"""Determinism rules: the pipeline must be replayable from its seeds.

The paper's INDICE pipeline is deterministic end-to-end — every analytic
stage is seeded, every output is a pure function of ``(collection,
config)``.  These rules fail the build when entropy leaks in:

* **DET001** — module-level RNG (``random.*`` / ``numpy.random.*``)
  instead of an explicitly seeded ``Generator`` / ``Random`` instance;
* **DET002** — wall-clock or entropy reads (``time.time``,
  ``datetime.now``, ``uuid4``, ``os.urandom``, ``secrets``) in pipeline
  code (``time.perf_counter`` / ``monotonic`` stay allowed: they feed
  timing counters, never results);
* **DET003** — materializing an unordered ``set`` into ordered data
  (iteration, ``list(...)``, ``join``) without sorting first — set order
  depends on ``PYTHONHASHSEED``, so it differs across processes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..imports import ImportTable
from ..model import Finding, Rule, SourceFile, register

__all__ = ["UnseededRng", "WallClock", "UnorderedIteration"]

#: Seeded-construction entry points: allowed, but only with arguments
#: (``default_rng()`` with no seed pulls OS entropy).
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
    }
)


@register
class UnseededRng(Rule):
    """DET001 — calls into module-level / unseeded random state."""

    code = "DET001"
    name = "unseeded-rng"
    rationale = (
        "module-level random.*/numpy.random.* draws from hidden global "
        "state; analytic stages must use an explicitly seeded Generator"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag RNG calls that bypass explicit seeding."""
        table = ImportTable(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = table.resolve(node.func)
            if dotted is None:
                continue
            if dotted in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield Finding(
                        file.display, node.lineno, node.col_offset, self.code,
                        f"{dotted}() without a seed draws OS entropy; pass an "
                        "explicit seed so the run is replayable",
                    )
                continue
            if dotted.startswith("numpy.random.") or (
                dotted.startswith("random.") and dotted.count(".") == 1
            ):
                yield Finding(
                    file.display, node.lineno, node.col_offset, self.code,
                    f"{dotted}() uses the module-level RNG (hidden global "
                    "state); use an explicitly seeded "
                    "numpy.random.default_rng(seed) instead",
                )


#: Calls that read the wall clock or OS entropy.
_FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getrandom",
        "random.SystemRandom",
    }
)


@register
class WallClock(Rule):
    """DET002 — wall-clock or OS-entropy reads in pipeline code."""

    code = "DET002"
    name = "wall-clock"
    rationale = (
        "pipeline outputs must be pure functions of (data, config, seed); "
        "wall-clock/entropy reads make reruns diverge (perf_counter for "
        "timing counters is fine)"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Flag calls into the forbidden wall-clock/entropy list."""
        table = ImportTable(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = table.resolve(node.func)
            if dotted is None:
                continue
            if dotted in _FORBIDDEN_CALLS or dotted.startswith("secrets."):
                yield Finding(
                    file.display, node.lineno, node.col_offset, self.code,
                    f"{dotted}() reads the wall clock / OS entropy; pipeline "
                    "results must depend only on data, config and seeds "
                    "(time.perf_counter is allowed for timing counters)",
                )


#: Builtins through which a set's arbitrary order escapes into ordered data.
_ORDERING_SINKS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


class _SetFlow(ast.NodeVisitor):
    """Tracks names bound to set-valued expressions inside one scope."""

    def __init__(self, rule: "UnorderedIteration", file: SourceFile):
        self.rule = rule
        self.file = file
        self.unordered: set[str] = set()
        self.findings: list[Finding] = []

    # -- what counts as an unordered expression -----------------------------

    def is_unordered(self, node: ast.expr) -> bool:
        """Whether *node* evaluates to an unordered (set-valued) result."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.unordered
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_unordered(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_unordered(node.left) or self.is_unordered(node.right)
        return False

    def _flag(self, node: ast.expr, how: str) -> None:
        self.findings.append(
            Finding(
                self.file.display, node.lineno, node.col_offset, self.rule.code,
                f"{how} a set materializes its arbitrary (PYTHONHASHSEED-"
                "dependent) order into the result; wrap it in sorted(...)",
            )
        )

    # -- scope handling: each function re-tracks its own locals -------------

    def _visit_scope(self, node: ast.AST) -> None:
        saved = self.unordered
        self.unordered = set()
        self.generic_visit(node)
        self.unordered = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Enter a fresh tracking scope for the function body."""
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Enter a fresh tracking scope for the async function body."""
        self._visit_scope(node)

    # -- bindings -----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track or untrack assigned names by the value's orderedness."""
        self.generic_visit(node)
        value_unordered = self.is_unordered(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if value_unordered:
                    self.unordered.add(target.id)
                else:
                    self.unordered.discard(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Track or untrack annotated assignments, same as plain ones."""
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) and node.value is not None:
            if self.is_unordered(node.value):
                self.unordered.add(node.target.id)
            else:
                self.unordered.discard(node.target.id)

    # -- ordering sinks -----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        """A ``for`` loop over a set is an ordering sink."""
        if self.is_unordered(node.iter):
            self._flag(node.iter, "iterating")
        self.generic_visit(node)

    def visit_comprehension_iters(self, generators: list[ast.comprehension]) -> None:
        """Flag set-valued iterables feeding an ordered comprehension."""
        for gen in generators:
            if self.is_unordered(gen.iter):
                self._flag(gen.iter, "iterating")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        """List comprehensions preserve iteration order: a sink."""
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        """Generator expressions yield in iteration order: a sink."""
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        """Dicts preserve insertion order, so their comps are sinks too."""
        self.visit_comprehension_iters(node.generators)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """``list()``/``tuple()``/... and ``str.join`` are ordering sinks."""
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDERING_SINKS
            and node.args
            and self.is_unordered(node.args[0])
        ):
            self._flag(node.args[0], f"{func.id}() over")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and self.is_unordered(node.args[0])
        ):
            self._flag(node.args[0], "str.join over")
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        """``*a_set`` unpacks in iteration order: a sink."""
        if self.is_unordered(node.value):
            self._flag(node.value, "unpacking")
        self.generic_visit(node)


@register
class UnorderedIteration(Rule):
    """DET003 — set iteration order escaping into ordered data."""

    code = "DET003"
    name = "unordered-iteration"
    rationale = (
        "set iteration order varies with PYTHONHASHSEED; any set that "
        "escapes into ordered/serialized data must go through sorted()"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        """Run the per-scope set-origin dataflow over the module."""
        flow = _SetFlow(self, file)
        flow.visit(file.tree)
        return iter(flow.findings)
