"""Project-contract rules: cache fingerprints and fault-site parity.

These rules are cross-file (they run once per analysis over the whole
file set) and *semantic*: they reconstruct the pipeline's own registries
from the code under analysis and diff them.

* **CACHE001** — every ``IndiceConfig`` field must be either fingerprinted
  into a stage-cache key (``_PREPROCESS_FIELDS`` / ``_ANALYZE_FIELDS`` in
  the engine) or explicitly declared outcome-neutral
  (``PERF_ONLY_FIELDS`` in the cache).  A field in neither set is silent
  fingerprint drift: changing it would reuse stale cache entries.  When
  the scanned files are the real installed modules, the rule additionally
  imports them and diffs the static view against the runtime dataclass,
  so dynamically injected fields cannot hide from the linter.
* **FAULT001** — every site registered in ``KNOWN_SITES`` must have an
  ``injector.arrive(SITE)`` / ``injector.fire(SITE)`` call site, and every
  call site must use a registered site.  A registered-but-unhooked site is
  a chaos plan that silently never fires; an unregistered call site is an
  injection point no plan can reach.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..model import Finding, Rule, SourceFile, register

__all__ = ["CacheFingerprintCoverage", "FaultSiteParity"]

#: The engine tuples whose union must cover the outcome-affecting fields.
FINGERPRINT_TUPLES = ("_PREPROCESS_FIELDS", "_ANALYZE_FIELDS")
#: The cache tuple naming the outcome-neutral fields.
EXCLUSION_TUPLE = "PERF_ONLY_FIELDS"


def _string_tuple_assignments(
    file: SourceFile, names: tuple[str, ...]
) -> dict[str, tuple[int, tuple[str, ...]]]:
    """Top-level ``NAME = ("a", "b", ...)`` assignments among *names*.

    Returns ``{name: (lineno, values)}`` for every match whose value is a
    tuple of string constants.
    """
    out: dict[str, tuple[int, tuple[str, ...]]] = {}
    for node in file.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or target.id not in names:
            continue
        if not isinstance(node.value, ast.Tuple):
            continue
        values = []
        for elt in node.value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                values.append(elt.value)
        out[target.id] = (node.lineno, tuple(values))
    return out


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[tuple[str, int]]:
    """``(name, lineno)`` of every field declared in the class body."""
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((stmt.target.id, stmt.lineno))
    return fields


@register
class CacheFingerprintCoverage(Rule):
    """CACHE001 — IndiceConfig fields vs. StageCache fingerprint tuples."""

    code = "CACHE001"
    name = "cache-fingerprint-coverage"
    rationale = (
        "an IndiceConfig field outside both the stage-cache fingerprints "
        "and PERF_ONLY_FIELDS means a config change can silently reuse "
        "stale cached outcomes"
    )

    #: Name of the config dataclass whose fields must be covered.
    config_class = "IndiceConfig"

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        """Diff the dataclass fields against the fingerprint tuples."""
        config_file: SourceFile | None = None
        class_node: ast.ClassDef | None = None
        for file in files:
            for node in file.tree.body:
                if (
                    isinstance(node, ast.ClassDef)
                    and node.name == self.config_class
                    and _is_dataclass_def(node)
                ):
                    config_file, class_node = file, node
                    break
            if class_node is not None:
                break
        if config_file is None or class_node is None:
            return  # nothing to check in this file set

        fingerprinted: dict[str, tuple[SourceFile, int, tuple[str, ...]]] = {}
        wanted = FINGERPRINT_TUPLES + (EXCLUSION_TUPLE,)
        for file in files:
            for name, (lineno, values) in _string_tuple_assignments(
                file, wanted
            ).items():
                fingerprinted[name] = (file, lineno, values)
        if not fingerprinted:
            return  # config class scanned without the engine/cache modules

        fields = _dataclass_fields(class_node)
        field_names = {name for name, __ in fields}
        covered: set[str] = set()
        for __, (___, ____, values) in sorted(fingerprinted.items()):
            covered |= set(values)

        for name, lineno in fields:
            if name not in covered:
                yield Finding(
                    config_file.display, lineno, 0, self.code,
                    f"{self.config_class}.{name} is neither fingerprinted "
                    f"({' / '.join(FINGERPRINT_TUPLES)}) nor declared "
                    f"outcome-neutral ({EXCLUSION_TUPLE}); a change to it "
                    "would silently reuse stale stage-cache entries",
                )
        for tuple_name in sorted(fingerprinted):
            file, lineno, values = fingerprinted[tuple_name]
            for value in values:
                if value not in field_names:
                    yield Finding(
                        file.display, lineno, 0, self.code,
                        f"'{value}' in {tuple_name} is not a field of "
                        f"{self.config_class} (stale or misspelled entry)",
                    )

        yield from self._runtime_cross_check(config_file, field_names, fingerprinted)

    def _runtime_cross_check(
        self,
        config_file: SourceFile,
        static_fields: set[str],
        fingerprinted: dict[str, tuple[SourceFile, int, tuple[str, ...]]],
    ) -> Iterator[Finding]:
        """Import the real modules and diff runtime vs. static views.

        Only runs when the scanned config file *is* the installed
        ``repro.core.config`` — fixture corpora never trigger an import.
        """
        import dataclasses
        from pathlib import Path

        try:
            from repro.core.config import IndiceConfig
            from repro.core.engine import _ANALYZE_FIELDS, _PREPROCESS_FIELDS
            from repro.perf.cache import PERF_ONLY_FIELDS
        except ImportError:
            return
        try:
            import repro.core.config as _config_module

            if Path(_config_module.__file__).resolve() != config_file.path.resolve():
                return
        except (OSError, TypeError):
            return

        runtime_fields = {f.name for f in dataclasses.fields(IndiceConfig)}
        for name in sorted(runtime_fields - static_fields):
            yield Finding(
                config_file.display, 1, 0, self.code,
                f"runtime field {self.config_class}.{name} is invisible to "
                "static analysis (added dynamically?); declare it in the "
                "class body so fingerprint coverage can be proven",
            )
        runtime_tuples = {
            "_PREPROCESS_FIELDS": _PREPROCESS_FIELDS,
            "_ANALYZE_FIELDS": _ANALYZE_FIELDS,
            "PERF_ONLY_FIELDS": PERF_ONLY_FIELDS,
        }
        for tuple_name in sorted(runtime_tuples):
            if tuple_name not in fingerprinted:
                continue
            file, lineno, static_values = fingerprinted[tuple_name]
            if tuple(runtime_tuples[tuple_name]) != static_values:
                yield Finding(
                    file.display, lineno, 0, self.code,
                    f"{tuple_name} at runtime differs from its source "
                    "literal (computed or patched?); keep it a literal "
                    "tuple of field names so coverage can be proven",
                )


@register
class FaultSiteParity(Rule):
    """FAULT001 — KNOWN_SITES registry vs. arrive()/fire() hook sites."""

    code = "FAULT001"
    name = "fault-site-parity"
    rationale = (
        "a KNOWN_SITES entry with no arrive()/fire() hook is a chaos rule "
        "that silently never fires; an unregistered hook is unreachable "
        "by any FaultPlan"
    )

    #: Methods whose first argument names an injection site.
    hook_methods = ("arrive", "fire")

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        """Diff the site registry against the hook call sites."""
        registry_file: SourceFile | None = None
        registry_line = 0
        registered: tuple[str, ...] = ()
        const_names: dict[str, str] = {}

        for file in files:
            assigns = _string_tuple_assignments(file, ("KNOWN_SITES",))
            constants = self._string_constants(file)
            if "KNOWN_SITES" in assigns:
                lineno, literal_values = assigns["KNOWN_SITES"]
                registry_file, registry_line = file, lineno
                registered = literal_values or self._named_tuple_values(
                    file, constants
                )
                const_names.update(constants)
        if registry_file is None:
            return  # no site registry in this file set

        called: dict[str, list[tuple[SourceFile, int, int]]] = {}
        for file in files:
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in self.hook_methods:
                    continue
                site = self._site_of(node.args[0], const_names)
                if site is None:
                    continue
                called.setdefault(site, []).append(
                    (file, node.lineno, node.col_offset)
                )

        for site in registered:
            if site not in called:
                yield Finding(
                    registry_file.display, registry_line, 0, self.code,
                    f"registered fault site '{site}' has no arrive()/fire() "
                    "call site; a plan naming it would silently never fire",
                )
        for site in sorted(called):
            if site in registered:
                continue
            for file, lineno, col in called[site]:
                yield Finding(
                    file.display, lineno, col, self.code,
                    f"injection call site uses unregistered fault site "
                    f"'{site}'; add it to KNOWN_SITES so plans can target "
                    "(and validators can accept) it",
                )

    @staticmethod
    def _string_constants(file: SourceFile) -> dict[str, str]:
        """Top-level ``NAME = "literal"`` assignments of one module."""
        out: dict[str, str] = {}
        for node in file.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                out[target.id] = node.value.value
        return out

    @staticmethod
    def _named_tuple_values(
        file: SourceFile, constants: dict[str, str]
    ) -> tuple[str, ...]:
        """KNOWN_SITES values when the tuple holds constant *names*."""
        for node in file.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or target.id != "KNOWN_SITES":
                continue
            if not isinstance(node.value, ast.Tuple):
                continue
            values = []
            for elt in node.value.elts:
                if isinstance(elt, ast.Name) and elt.id in constants:
                    values.append(constants[elt.id])
                elif isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    values.append(elt.value)
            return tuple(values)
        return ()

    @staticmethod
    def _site_of(arg: ast.expr, const_names: dict[str, str]) -> str | None:
        """Resolve a hook call's site argument to its site string."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.Name):
            return const_names.get(arg.id)
        return None
