"""Project-contract rules: cache fingerprints and fault-site parity.

These rules are cross-file and *semantic*: they reconstruct the
pipeline's own registries from the code under analysis and diff them.
Both run against the :class:`~repro.checks.project.ProjectIndex` facts
(not the ASTs), so a warm incremental run checks them without re-parsing
a single unchanged file.

* **CACHE001** — every ``IndiceConfig`` field must be either fingerprinted
  into a stage-cache key (``_PREPROCESS_FIELDS`` / ``_ANALYZE_FIELDS`` in
  the engine) or explicitly declared outcome-neutral
  (``PERF_ONLY_FIELDS`` in the cache).  A field in neither set is silent
  fingerprint drift: changing it would reuse stale cache entries.  When
  the scanned files are the real installed modules, the rule additionally
  imports them and diffs the static view against the runtime dataclass,
  so dynamically injected fields cannot hide from the linter.
* **FAULT001** — every site registered in ``KNOWN_SITES`` must have an
  ``injector.arrive(SITE)`` / ``injector.fire(SITE)`` call site, and every
  call site must use a registered site.  A registered-but-unhooked site is
  a chaos plan that silently never fires; an unregistered call site is an
  injection point no plan can reach.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..model import Finding, Rule, register

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, types only
    from ..project import FileSummary, ProjectIndex

__all__ = ["CacheFingerprintCoverage", "FaultSiteParity"]

#: The engine tuples whose union must cover the outcome-affecting fields.
FINGERPRINT_TUPLES = ("_PREPROCESS_FIELDS", "_ANALYZE_FIELDS")
#: The cache tuple naming the outcome-neutral fields.
EXCLUSION_TUPLE = "PERF_ONLY_FIELDS"


@register
class CacheFingerprintCoverage(Rule):
    """CACHE001 — IndiceConfig fields vs. StageCache fingerprint tuples."""

    code = "CACHE001"
    name = "cache-fingerprint-coverage"
    rationale = (
        "an IndiceConfig field outside both the stage-cache fingerprints "
        "and PERF_ONLY_FIELDS means a config change can silently reuse "
        "stale cached outcomes"
    )

    #: Name of the config dataclass whose fields must be covered.
    config_class = "IndiceConfig"

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Diff the dataclass fields against the fingerprint tuples."""
        config_summary: "FileSummary | None" = None
        fields: list = []
        for summary in index.summaries:
            entry = summary.facts.get("dataclasses", {}).get(self.config_class)
            if entry is not None:
                config_summary = summary
                fields = entry["fields"]
                break
        if config_summary is None:
            return  # nothing to check in this file set

        #: tuple name -> (owning summary, lineno, values, has unresolved refs)
        fingerprinted: dict[str, tuple] = {}
        wanted = FINGERPRINT_TUPLES + (EXCLUSION_TUPLE,)
        for summary in index.summaries:
            tuples = summary.facts.get("string_tuples", {})
            for name in wanted:
                entry = tuples.get(name)
                if entry is not None:
                    fingerprinted[name] = (
                        summary,
                        entry["lineno"],
                        tuple(entry["values"]),
                        bool(entry.get("name_refs")),
                    )
        if not fingerprinted:
            return  # config class scanned without the engine/cache modules

        field_names = {name for name, __, ___ in fields}
        covered: set[str] = set()
        for __, (___, ____, values, _____) in sorted(fingerprinted.items()):
            covered |= set(values)

        for name, lineno, __ in fields:
            if name not in covered:
                yield Finding(
                    config_summary.display, lineno, 0, self.code,
                    f"{self.config_class}.{name} is neither fingerprinted "
                    f"({' / '.join(FINGERPRINT_TUPLES)}) nor declared "
                    f"outcome-neutral ({EXCLUSION_TUPLE}); a change to it "
                    "would silently reuse stale stage-cache entries",
                )
        for tuple_name in sorted(fingerprinted):
            summary, lineno, values, __ = fingerprinted[tuple_name]
            for value in values:
                if value not in field_names:
                    yield Finding(
                        summary.display, lineno, 0, self.code,
                        f"'{value}' in {tuple_name} is not a field of "
                        f"{self.config_class} (stale or misspelled entry)",
                    )

        yield from self._runtime_cross_check(
            config_summary, field_names, fingerprinted
        )

    def _runtime_cross_check(
        self,
        config_summary: "FileSummary",
        static_fields: set[str],
        fingerprinted: dict[str, tuple],
    ) -> Iterator[Finding]:
        """Import the real modules and diff runtime vs. static views.

        Only runs when the scanned config file *is* the installed
        ``repro.core.config`` — fixture corpora never trigger an import.
        """
        import dataclasses
        from pathlib import Path

        try:
            from repro.core.config import IndiceConfig
            from repro.core.engine import _ANALYZE_FIELDS, _PREPROCESS_FIELDS
            from repro.perf.cache import PERF_ONLY_FIELDS
        except ImportError:
            return
        try:
            import repro.core.config as _config_module

            if (
                Path(_config_module.__file__).resolve()
                != config_summary.path.resolve()
            ):
                return
        except (OSError, TypeError):
            return

        runtime_fields = {f.name for f in dataclasses.fields(IndiceConfig)}
        for name in sorted(runtime_fields - static_fields):
            yield Finding(
                config_summary.display, 1, 0, self.code,
                f"runtime field {self.config_class}.{name} is invisible to "
                "static analysis (added dynamically?); declare it in the "
                "class body so fingerprint coverage can be proven",
            )
        runtime_tuples = {
            "_PREPROCESS_FIELDS": _PREPROCESS_FIELDS,
            "_ANALYZE_FIELDS": _ANALYZE_FIELDS,
            "PERF_ONLY_FIELDS": PERF_ONLY_FIELDS,
        }
        for tuple_name in sorted(runtime_tuples):
            if tuple_name not in fingerprinted:
                continue
            summary, lineno, static_values, has_refs = fingerprinted[tuple_name]
            if has_refs:
                continue  # constant-name entries resolve elsewhere
            if tuple(runtime_tuples[tuple_name]) != static_values:
                yield Finding(
                    summary.display, lineno, 0, self.code,
                    f"{tuple_name} at runtime differs from its source "
                    "literal (computed or patched?); keep it a literal "
                    "tuple of field names so coverage can be proven",
                )


@register
class FaultSiteParity(Rule):
    """FAULT001 — KNOWN_SITES registry vs. arrive()/fire() hook sites."""

    code = "FAULT001"
    name = "fault-site-parity"
    rationale = (
        "a KNOWN_SITES entry with no arrive()/fire() hook is a chaos rule "
        "that silently never fires; an unregistered hook is unreachable "
        "by any FaultPlan"
    )

    #: Methods whose first argument names an injection site.
    hook_methods = ("arrive", "fire")

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Diff the site registry against the hook call sites."""
        registry_summary: "FileSummary | None" = None
        registry_line = 0
        registered: tuple[str, ...] = ()
        const_names: dict[str, str] = {}

        for summary in index.summaries:
            entry = summary.facts.get("string_tuples", {}).get("KNOWN_SITES")
            if entry is None:
                continue
            constants = summary.facts.get("string_consts", {})
            registry_summary, registry_line = summary, entry["lineno"]
            literal_values = tuple(entry["values"])
            named_values = tuple(
                constants[ref]
                for ref in entry.get("name_refs", ())
                if ref in constants
            )
            registered = literal_values or named_values
            const_names.update(constants)
        if registry_summary is None:
            return  # no site registry in this file set

        called: dict[str, list[tuple]] = {}
        for summary in index.summaries:
            for method, site, ref, lineno, col in summary.facts.get(
                "hook_calls", ()
            ):
                if method not in self.hook_methods:
                    continue
                resolved = site or const_names.get(ref)
                if not resolved:
                    continue
                called.setdefault(resolved, []).append((summary, lineno, col))

        for site in registered:
            if site not in called:
                yield Finding(
                    registry_summary.display, registry_line, 0, self.code,
                    f"registered fault site '{site}' has no arrive()/fire() "
                    "call site; a plan naming it would silently never fire",
                )
        for site in sorted(called):
            if site in registered:
                continue
            for summary, lineno, col in called[site]:
                yield Finding(
                    summary.display, lineno, col, self.code,
                    f"injection call site uses unregistered fault site "
                    f"'{site}'; add it to KNOWN_SITES so plans can target "
                    "(and validators can accept) it",
                )
