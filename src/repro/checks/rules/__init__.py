"""The rule set — importing this package registers every rule.

Modules group rules by the contract they defend:

* :mod:`.determinism` — DET001 (unseeded RNG), DET002 (wall clock /
  entropy), DET003 (unordered iteration escaping into results);
* :mod:`.contracts` — CACHE001 (stage-cache fingerprint coverage),
  FAULT001 (fault-site registry/hook parity);
* :mod:`.crossmodule` — COL001/COL002/COL003 (column lineage),
  PAR001/PAR002 (ParallelMap fork-safety), CFG001 (IndiceConfig ↔ CLI
  parity), IMP001 (import cycles);
* :mod:`.hygiene` — EXC001 (silent broad except), MUT001 (mutable
  defaults), FLOAT001 (float equality);
* :mod:`.resources` — LOCK001 (acquire without provable release),
  PAR003 (shared-memory create without provable close/unlink cleanup);
* :mod:`.concurrency` — LOCK002 (lock-order cycle), LOCK003
  (inconsistent guard), LOCK004 (blocking call under lock), SEM001
  (semaphore acquire/release imbalance);
* :mod:`.effects` — CACHE002 (un-fingerprinted cache read), DET004
  (tainted serialized sink), FAULT002 (non-idempotent retry), PURE001
  (impure cross-module worker), all over the interprocedural
  :class:`~repro.checks.effects.EffectModel`.
"""

from . import (
    concurrency,
    contracts,
    crossmodule,
    determinism,
    effects,
    hygiene,
    resources,
)

__all__ = [
    "concurrency",
    "contracts",
    "crossmodule",
    "determinism",
    "effects",
    "hygiene",
    "resources",
]
