"""The rule set — importing this package registers every rule.

Modules group rules by the contract they defend:

* :mod:`.determinism` — DET001 (unseeded RNG), DET002 (wall clock /
  entropy), DET003 (unordered iteration escaping into results);
* :mod:`.contracts` — CACHE001 (stage-cache fingerprint coverage),
  FAULT001 (fault-site registry/hook parity);
* :mod:`.hygiene` — EXC001 (silent broad except), MUT001 (mutable
  defaults), FLOAT001 (float equality).
"""

from . import contracts, determinism, hygiene

__all__ = ["contracts", "determinism", "hygiene"]
