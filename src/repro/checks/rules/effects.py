"""Interprocedural effect rules over the :class:`~repro.checks.effects.EffectModel`.

The per-file DET/CACHE rules prove *local* purity; these four prove it
across the call graph, where the cache layers actually break:

* **CACHE002** — a ``StageCache``-keyed stage callable or an
  ``ArtifactStore`` render whose transitive effect set reads state the
  fingerprints never cover (``os.environ``, mutated module globals, the
  wall clock, unseeded RNG).  A hit on such an entry silently replays a
  value computed under different hidden state.
* **DET004** — a wall-clock / RNG / set-order-tainted value flowing
  through the call graph into a serialized sink (``json``/``pickle``
  dumps, the spill writer, the shm codec, ``Artifact.build``'s
  body+ETag).  The per-file DET002/DET003 catch the source expression;
  this catches the *flow* a pragma or a function boundary hides.
* **FAULT002** — a ``retry_with_backoff`` region whose retried callable
  has a non-idempotent external write effect (append-mode IO, env
  writes, module-global mutation): one logical operation would apply
  its side effect once per attempt.
* **PURE001** — a ``ParallelMap.map`` / ``map_table`` worker with
  transitive write effects on shared state *across module boundaries* —
  the interprocedural generalization of PAR002, which only closes a
  worker over its own module.
"""

from __future__ import annotations

from typing import Iterator

from ..effects import (
    EffectModel,
    INSTRUMENTATION_ENV,
    NON_IDEMPOTENT_WRITES,
    UNFINGERPRINTED_READS,
)
from ..model import Finding, Rule, register

__all__ = [
    "UnfingerprintedCacheRead",
    "TaintedSerializedSink",
    "NonIdempotentRetry",
    "ImpureWorker",
]


def _short(gid: str) -> str:
    """``module:qual`` → ``qual`` with the module's last segment."""
    module, __, qual = gid.partition(":")
    return f"{module.rsplit('.', 1)[-1]}.{qual}"


def _origin(model: EffectModel, origin_gid: str, lineno: int) -> str:
    display, __ = model.site(origin_gid)
    return f"{_short(origin_gid)} ({display}:{lineno})"


@register
class UnfingerprintedCacheRead(Rule):
    """CACHE002 — a cached callable reads state its fingerprint misses.

    ``StageCache`` keys are ``(stage, content fingerprint, config
    fingerprint)`` and ``ArtifactStore`` keys are
    ``analysis_version()``; both promise the cached value is a pure
    function of the key.  Any transitive read of ``os.environ``, a
    mutated module global, the wall clock or unseeded RNG inside the
    cached computation breaks that promise — a later hit replays a
    value computed under hidden state the key never saw.
    Instrumentation flags (``REPRO_SANITIZE_LOCKS``,
    ``REPRO_AUDIT_EFFECTS``) are exempt: they arm behaviour-neutral
    observers, which the runtime effect audit itself cross-checks.
    """

    code = "CACHE002"
    name = "unfingerprinted-cache-read"
    rationale = (
        "a cache hit replays the stored value instead of the "
        "computation; if the computation read state outside the cache "
        "key, the replay is silently wrong — every read must be "
        "fingerprinted or removed"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Close every cache root over its transitive read effects."""
        model = EffectModel.of(index)
        for gid, kind, lineno, col in model.roots():
            offenders = []
            for token, (origin, oline) in sorted(
                model.effects(gid).items()
            ):
                category, __, detail = token.partition(":")
                if category not in UNFINGERPRINTED_READS:
                    continue
                if category == "env_read" and detail in INSTRUMENTATION_ENV:
                    continue
                offenders.append((token, origin, oline))
            if not offenders:
                continue
            token, origin, oline = offenders[0]
            extra = (
                f" (+{len(offenders) - 1} more)"
                if len(offenders) > 1
                else ""
            )
            display, __ = model.site(gid)
            what = (
                "stage cached by StageCache"
                if kind == "stage"
                else "ArtifactStore render"
            )
            yield Finding(
                display, lineno, col, self.code,
                f"'{_short(gid)}' keys a {what} but transitively reads "
                f"un-fingerprinted state: {token} via "
                f"{_origin(model, origin, oline)}{extra}; cover the read "
                "in the fingerprint or hoist it out of the cached region",
            )


@register
class TaintedSerializedSink(Rule):
    """DET004 — nondeterminism reaches a serialized sink via the call graph.

    Spills, shm segments, artifact bodies and ETags are compared
    bit-for-bit by the equivalence tests and reused across runs by the
    caches.  A value tainted by the wall clock, unseeded RNG or set
    iteration order that flows — possibly through several calls — into
    ``json``/``pickle``/``marshal`` dumps, ``write_spill``,
    ``encode_table`` or ``Artifact.build`` makes those bytes differ
    between identical runs.  ``sorted(...)`` launders set-order taint
    (it pins an order); nothing launders clock or RNG taint.
    """

    code = "DET004"
    name = "tainted-serialized-sink"
    rationale = (
        "serialized bytes feed caches, ETags and bit-identity "
        "equivalence checks; a time/RNG/set-order-dependent value in "
        "them makes every rerun a cache miss and every equivalence "
        "test flaky"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Judge every serialized-sink call's argument provenance."""
        model = EffectModel.of(index)
        for summary in index.summaries:
            functions = (summary.facts.get("effects") or {}).get(
                "functions", {}
            )
            for qual in sorted(functions):
                for sink in functions[qual].get("sinks", ()):
                    reasons: dict[str, str] = {}
                    for reason, __ in sink.get("local_reasons", ()):
                        reasons.setdefault(reason, "a local value")
                    for token, wrapped in sink.get("args", ()):
                        for callee in model.resolve_call(
                            index, summary.module, token
                        ):
                            for reason, (origin, oline) in model.returns_taint(
                                callee
                            ).items():
                                if wrapped and reason == "set-order":
                                    continue  # sorted(...) pinned the order
                                reasons.setdefault(
                                    reason,
                                    f"the return of "
                                    f"{_origin(model, origin, oline)}",
                                )
                    if not reasons:
                        continue
                    listed = "; ".join(
                        f"{reason}-tainted from {src}"
                        for reason, src in sorted(reasons.items())
                    )
                    yield Finding(
                        summary.display, sink["lineno"], sink["col"],
                        self.code,
                        f"serialized sink '{sink['token']}' in '{qual}' "
                        f"receives {listed}; serialized bytes must be a "
                        "pure function of (data, config, seed)",
                    )


@register
class NonIdempotentRetry(Rule):
    """FAULT002 — a retried callable's side effects are not replay-safe.

    ``retry_with_backoff`` re-executes its callable after transient
    failures, so one logical operation may run N times.  Atomic
    publication (temp file + ``os.replace``) replays cleanly; an
    append-mode write, an ``os.environ`` write or a module-global
    mutation applies once *per attempt* — duplicated log lines,
    double-counted counters, corrupted shared state.  The analysis
    closes the retried callable (a name, a ``functools.partial``, or
    the calls inside a thunk lambda) over its transitive write effects.
    """

    code = "FAULT002"
    name = "non-idempotent-retry"
    rationale = (
        "a retry region re-runs its callable an unpredictable number "
        "of times; only idempotent effects (pure compute, atomic "
        "replace) survive that contract — appends and shared-state "
        "mutations multiply"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Close every retry region over its retried write effects."""
        model = EffectModel.of(index)
        for summary in index.summaries:
            functions = (summary.facts.get("effects") or {}).get(
                "functions", {}
            )
            for qual in sorted(functions):
                for retry in functions[qual].get("retries", ()):
                    offenders: dict[str, str] = {}
                    for token, __ in retry.get("inline_effects", ()):
                        category, ___, detail = token.partition(":")
                        offenders.setdefault(
                            f"{category}:{summary.module}.{detail}",
                            "the retried thunk itself",
                        )
                    targets = []
                    if retry.get("token"):
                        targets.extend(
                            model.resolve_call(
                                index, summary.module, retry["token"]
                            )
                        )
                    for token in retry.get("inline_calls", ()):
                        targets.extend(
                            model.resolve_call(index, summary.module, token)
                        )
                    for callee in dict.fromkeys(targets):
                        for token, (origin, oline) in sorted(
                            model.effects(callee).items()
                        ):
                            if token.partition(":")[0] in NON_IDEMPOTENT_WRITES:
                                offenders.setdefault(
                                    token,
                                    f"via {_origin(model, origin, oline)}",
                                )
                    if not offenders:
                        continue
                    token, src = sorted(offenders.items())[0]
                    extra = (
                        f" (+{len(offenders) - 1} more)"
                        if len(offenders) > 1
                        else ""
                    )
                    yield Finding(
                        summary.display, retry["lineno"], retry["col"],
                        self.code,
                        f"retry_with_backoff in '{qual}' retries a "
                        f"non-idempotent effect: {token} {src}{extra}; "
                        "make the write atomic (temp file + os.replace) "
                        "or hoist it out of the retried callable",
                    )


@register
class ImpureWorker(Rule):
    """PURE001 — a pool worker's writes cross a module boundary.

    PAR002 closes a submitted worker over its *own module's* helpers;
    a worker that calls into another module and mutates state there —
    or writes ``os.environ`` anywhere — has the same fork-and-forget
    bug one import further away: the mutation lands in the worker
    process's copy and the parent never sees it.  Workers must return
    values; shared state travels via ``initializer``/``initargs``.
    """

    code = "PURE001"
    name = "impure-worker"
    rationale = (
        "process-pool workers run in forked children; any transitive "
        "write to module or environment state mutates the child's copy "
        "only — the result is either dead code or a bug masked by "
        "fork semantics"
    )

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Close every map/map_table worker over cross-module writes."""
        model = EffectModel.of(index)
        for summary in index.summaries:
            facts = summary.facts
            submissions = list(facts.get("map_calls", ())) + list(
                facts.get("map_table_calls", ())
            )
            for call in submissions:
                if call["kind"] not in ("name", "partial"):
                    continue
                for gid in model.resolve_call(
                    index, summary.module, call["func"]
                ):
                    offenders = []
                    for token, (origin, oline) in sorted(
                        model.effects(gid).items()
                    ):
                        category, __, detail = token.partition(":")
                        if category == "env_write":
                            offenders.append((token, origin, oline))
                        elif category == "global_write":
                            origin_module = origin.partition(":")[0]
                            # same-module writes are PAR002's finding;
                            # this rule owns the cross-module closure
                            if origin_module != summary.module:
                                offenders.append((token, origin, oline))
                    if not offenders:
                        continue
                    token, origin, oline = offenders[0]
                    extra = (
                        f" (+{len(offenders) - 1} more)"
                        if len(offenders) > 1
                        else ""
                    )
                    yield Finding(
                        summary.display, call["lineno"], call["col"],
                        self.code,
                        f"worker '{call['func']}' submitted to a process "
                        f"pool transitively writes shared state: {token} "
                        f"via {_origin(model, origin, oline)}{extra}; "
                        "workers must return values, not mutate state",
                    )
