"""SARIF 2.1.0 output for CI code-scanning integrations.

Emits the minimal valid subset: one run, one driver tool, the registered
rules as ``reportingDescriptor`` entries and each finding (plus each
parse error, under the synthetic ``PARSE`` rule) as a ``result`` with a
physical location.  GitHub code scanning and most SARIF viewers accept
exactly this shape, and ``tests/test_checks.py`` round-trips it through
``json.loads`` to keep the contract pinned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .model import Rule

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, types only
    from .checker import CheckResult

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Synthetic rule id for files the analyzer could not parse.
PARSE_RULE_ID = "PARSE"


def _location(path: str, line: int, col: int) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {
                "startLine": max(line, 1),
                "startColumn": max(col, 0) + 1,  # SARIF columns are 1-based
            },
        }
    }


#: Rule-catalog anchor base for per-rule ``helpUri`` entries.
HELP_URI_BASE = "https://example.invalid/repro/rules"


def _descriptor(rule: Rule) -> dict:
    """One ``reportingDescriptor``: docs and severity come from the rule.

    ``fullDescription`` is the rule class's docstring — the same prose
    ``--explain`` prints — so the code-scanning UI shows the complete
    contract, not just the one-line rationale.
    """
    descriptor = {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.rationale},
        "helpUri": f"{HELP_URI_BASE}/{rule.code.lower()}",
        "defaultConfiguration": {"level": rule.severity},
    }
    doc = (type(rule).__doc__ or "").strip()
    if doc:
        descriptor["fullDescription"] = {"text": doc}
    return descriptor


def to_sarif(result: "CheckResult", rules: Sequence[Rule]) -> dict:
    """The SARIF payload of one analysis (``json.dump``-ready)."""
    descriptors = [_descriptor(rule) for rule in rules]
    descriptors.append(
        {
            "id": PARSE_RULE_ID,
            "name": "parse-error",
            "shortDescription": {"text": "the file could not be parsed"},
            "defaultConfiguration": {"level": "error"},
        }
    )

    levels = {rule.code: rule.severity for rule in rules}
    results = [
        {
            "ruleId": finding.rule,
            "level": levels.get(finding.rule, "error"),
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line, finding.col)],
        }
        for finding in result.findings
    ]
    for path, message in result.errors:
        results.append(
            {
                "ruleId": PARSE_RULE_ID,
                "level": "error",
                "message": {"text": message},
                "locations": [_location(path, 1, 0)],
            }
        )

    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-checks",
                        "informationUri": "https://example.invalid/repro",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
