"""The analysis driver: collect files, run rules, apply suppressions.

``Checker.run(paths)`` walks the given files/directories, parses every
``.py`` file once, runs each registered rule's per-file and per-project
hooks, then filters findings through ``# repro: noqa[RULE]`` pragmas and
the optional baseline.  The result carries everything a front end needs:
surviving findings (sorted by location), suppression counts and parse
errors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .baseline import Baseline
from .model import Finding, Rule, SourceFile, all_rules
from .pragmas import parse_pragmas

__all__ = ["Checker", "CheckResult", "check_tree", "collect_python_files"]

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def collect_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files kept as-is), sorted."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _display_path(path: Path) -> str:
    """A stable, readable path for findings (cwd-relative when possible)."""
    try:
        relative = path.resolve().relative_to(Path.cwd().resolve())
        return relative.as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class CheckResult:
    """Everything one analysis produced."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0
    n_baselined: int = 0
    #: ``(display_path, message)`` for files that failed to parse.
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the analysis is clean (no findings, no parse errors)."""
        return not self.findings and not self.errors

    def to_dict(self) -> dict[str, object]:
        """The ``--format=json`` payload."""
        return {
            "version": 1,
            "files": self.n_files,
            "suppressed": self.n_suppressed,
            "baselined": self.n_baselined,
            "errors": [{"path": p, "message": m} for p, m in self.errors],
            "findings": [f.to_dict() for f in self.findings],
        }


class Checker:
    """Runs a rule set over a file set.

    Parameters
    ----------
    rules:
        The rules to run (default: every registered rule).
    baseline:
        Grandfathered findings subtracted from the result (default: none —
        the project contract is an empty baseline on ``src/repro``).
    """

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = None,
    ):
        self.rules: tuple[Rule, ...] = tuple(rules) if rules is not None else all_rules()
        self.baseline = baseline

    def load(self, path: Path) -> SourceFile | None:
        """Parse one file; ``None`` (with no raise) on syntax errors."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return SourceFile(
            path=path, display=_display_path(path), text=text, tree=tree
        )

    def run(self, paths: Sequence[str | Path]) -> CheckResult:
        """Analyze every ``.py`` file under *paths*."""
        result = CheckResult()
        files: list[SourceFile] = []
        for path in collect_python_files(paths):
            try:
                loaded = self.load(path)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                result.errors.append((_display_path(path), str(exc)))
                continue
            if loaded is not None:
                files.append(loaded)
        result.n_files = len(files)

        raw: list[Finding] = []
        for file in files:
            for rule in self.rules:
                raw.extend(rule.check_file(file))
        for rule in self.rules:
            raw.extend(rule.check_project(files))

        pragma_index = {
            file.display: parse_pragmas(file.text, file.tree) for file in files
        }
        kept: list[Finding] = []
        for finding in sorted(raw):
            pragmas = pragma_index.get(finding.path)
            if pragmas is not None and pragmas.suppresses(finding):
                result.n_suppressed += 1
            else:
                kept.append(finding)

        if self.baseline is not None:
            kept, result.n_baselined = self.baseline.apply(kept)
        result.findings = kept
        return result


def check_tree(
    root: str | Path, baseline: Baseline | None = None
) -> CheckResult:
    """Convenience one-shot: run every rule over *root*."""
    return Checker(baseline=baseline).run([root])
