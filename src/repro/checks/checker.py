"""The analysis driver: collect, summarize (with caching), run rules.

``Checker.run(paths)`` walks the given files/directories and builds one
:class:`~repro.checks.project.FileSummary` per ``.py`` file — parsing it
and running the per-file rules, or rehydrating the summary from the
incremental :class:`~repro.checks.cache.AnalysisCache` when the file's
content hash is already known.  The summaries feed the
:class:`~repro.checks.project.ProjectIndex` against which every
cross-module rule runs, so a warm incremental run re-checks the whole
contract surface without re-parsing unchanged files.  Findings are then
filtered through ``# repro: noqa[RULE]`` pragmas and the optional
baseline.  The result carries everything a front end needs: surviving
findings (sorted by location), suppression counts, cache statistics and
parse errors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .baseline import Baseline
from .cache import AnalysisCache, content_hash
from .model import Finding, Rule, SourceFile, all_rules
from .pragmas import parse_pragmas, pragma_index_from_dict, pragma_index_to_dict
from .project import FileSummary, ProjectIndex, extract_facts, module_name_for

__all__ = ["Checker", "CheckResult", "check_tree", "collect_python_files"]

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def collect_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files kept as-is), sorted."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _display_path(path: Path) -> str:
    """A stable, readable path for findings (cwd-relative when possible)."""
    try:
        relative = path.resolve().relative_to(Path.cwd().resolve())
        return relative.as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class CheckResult:
    """Everything one analysis produced."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0
    n_baselined: int = 0
    #: Files whose summary came from the incremental cache (not re-parsed).
    n_from_cache: int = 0
    #: ``(display_path, message)`` for files that failed to parse.
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the analysis is clean (no findings, no parse errors)."""
        return not self.findings and not self.errors

    def to_dict(self) -> dict[str, object]:
        """The ``--format=json`` payload."""
        return {
            "version": 2,
            "files": self.n_files,
            "cached": self.n_from_cache,
            "suppressed": self.n_suppressed,
            "baselined": self.n_baselined,
            "errors": [{"path": p, "message": m} for p, m in self.errors],
            "findings": [f.to_dict() for f in self.findings],
        }


class Checker:
    """Runs a rule set over a file set.

    Parameters
    ----------
    rules:
        The rules to run (default: every registered rule).
    baseline:
        Grandfathered findings subtracted from the result (default: none —
        the project contract is an empty baseline on ``src/repro``).
    cache:
        An :class:`~repro.checks.cache.AnalysisCache` reusing per-file
        summaries across runs (default: none — every file is analyzed).
    """

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = None,
        cache: AnalysisCache | None = None,
    ):
        self.rules: tuple[Rule, ...] = tuple(rules) if rules is not None else all_rules()
        self.baseline = baseline
        self.cache = cache

    def load(self, path: Path) -> SourceFile:
        """Parse one file (raises on syntax/decoding errors)."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return SourceFile(
            path=path, display=_display_path(path), text=text, tree=tree
        )

    def _summarize(self, path: Path) -> tuple[FileSummary, SourceFile | None]:
        """The summary of one file: from cache when fresh, else analyzed."""
        display = _display_path(path)
        data = path.read_bytes()
        digest = content_hash(data)
        if self.cache is not None:
            entry = self.cache.get(digest)
            if entry is not None:
                summary = FileSummary.from_cache_entry(
                    entry, path, display, module_name_for(path), digest
                )
                return summary, None

        try:
            text = data.decode("utf-8")
            tree = ast.parse(text, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            summary = FileSummary(
                path=path,
                display=display,
                module=module_name_for(path),
                content_hash=digest,
                error=str(exc),
            )
            if self.cache is not None:
                self.cache.put(digest, summary.to_cache_entry())
            return summary, None

        source = SourceFile(path=path, display=display, text=text, tree=tree)
        findings = []
        for rule in self.rules:
            for finding in rule.check_file(source):
                findings.append(
                    [finding.line, finding.col, finding.rule, finding.message]
                )
        summary = FileSummary(
            path=path,
            display=display,
            module=module_name_for(path),
            content_hash=digest,
            facts=extract_facts(tree),
            findings=findings,
            pragmas=pragma_index_to_dict(parse_pragmas(text, tree)),
        )
        if self.cache is not None:
            self.cache.put(digest, summary.to_cache_entry())
        return summary, source

    def run(
        self,
        paths: Sequence[str | Path],
        changed_only: set[Path] | None = None,
    ) -> CheckResult:
        """Analyze every ``.py`` file under *paths*.

        With *changed_only* (a set of resolved paths), per-file findings
        are reported only for those files; cross-module findings are
        always reported, because an edit anywhere can break a contract
        whose anchor is elsewhere.
        """
        result = CheckResult()
        summaries: list[FileSummary] = []
        sources: dict[str, SourceFile] = {}
        for path in collect_python_files(paths):
            try:
                summary, source = self._summarize(path)
            except OSError as exc:
                result.errors.append((_display_path(path), str(exc)))
                continue
            summaries.append(summary)
            if summary.error is not None:
                result.errors.append((summary.display, summary.error))
            elif source is not None:
                sources[summary.display] = source
        live = [s for s in summaries if s.error is None]
        result.n_files = len(live)
        result.n_from_cache = sum(1 for s in live if s.from_cache)

        file_findings: list[Finding] = []
        for summary in live:
            for line, col, rule, message in summary.findings:
                file_findings.append(
                    Finding(summary.display, line, col, rule, message)
                )

        project_findings: list[Finding] = []
        index = ProjectIndex(live)
        for rule in self.rules:
            project_findings.extend(rule.check_index(index))

        # legacy whole-file-set hook: only pay the parse cost when a rule
        # actually overrides it (none of the built-in rules do anymore)
        legacy = [
            rule
            for rule in self.rules
            if type(rule).check_project is not Rule.check_project
        ]
        if legacy:
            files = []
            for summary in live:
                source = sources.get(summary.display)
                if source is None:
                    source = self.load(summary.path)
                files.append(source)
            for rule in legacy:
                project_findings.extend(rule.check_project(files))

        if changed_only is not None:
            changed = {Path(p).resolve() for p in changed_only}
            keep = {
                s.display for s in live if s.path.resolve() in changed
            }
            file_findings = [f for f in file_findings if f.path in keep]

        pragma_index = {
            summary.display: pragma_index_from_dict(summary.pragmas)
            for summary in live
        }
        kept: list[Finding] = []
        for finding in sorted(file_findings + project_findings):
            pragmas = pragma_index.get(finding.path)
            if pragmas is not None and pragmas.suppresses(finding):
                result.n_suppressed += 1
            else:
                kept.append(finding)

        if self.baseline is not None:
            kept, result.n_baselined = self.baseline.apply(kept)
        result.findings = kept
        if self.cache is not None:
            self.cache.save()
        return result


def check_tree(
    root: str | Path, baseline: Baseline | None = None
) -> CheckResult:
    """Convenience one-shot: run every rule over *root*."""
    return Checker(baseline=baseline).run([root])
