"""Resolution of names and attribute chains to dotted module paths.

The determinism rules must know that ``np.random.rand`` is
``numpy.random.rand`` and that ``from time import time; time()`` calls
``time.time``.  :class:`ImportTable` records a file's import bindings and
resolves call targets through them.  Resolution is deliberately
conservative: a name that was never imported resolves to ``None`` (it is
a local object whose behaviour the linter cannot know), so method calls
on e.g. a seeded ``Generator`` instance are never misattributed to the
module-level RNG.
"""

from __future__ import annotations

import ast

__all__ = ["ImportTable"]


class ImportTable:
    """The import bindings of one module, with dotted-path resolution."""

    def __init__(self, tree: ast.Module):
        #: local name -> the dotted path it stands for
        self.bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        # ``import numpy.random as npr`` binds the full path
                        self.bindings[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the *root* name
                        root = alias.name.split(".", 1)[0]
                        self.bindings[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative import: never stdlib/numpy
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """The dotted path of a Name / Attribute chain, or ``None``.

        ``np.random.rand`` resolves through ``import numpy as np`` to
        ``numpy.random.rand``; a chain rooted at an un-imported name
        (a local variable, a parameter) resolves to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.bindings.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])
