"""A minimal SVG document builder.

All INDICE visualizations render to standalone SVG (folium/Leaflet are
substituted dependencies, see DESIGN.md): maps, charts and matrices are
vector documents a browser opens directly and dashboards embed inline.
Only the elements the framework draws are implemented; every element
supports a ``<title>`` child, which browsers show as a hover tooltip —
that is how "the users can ... check the attribute values for each
certificate by clicking on the markers" degrades gracefully without
JavaScript.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

__all__ = ["SvgDocument"]


def _fmt(value: float) -> str:
    """Compact numeric formatting for attribute values."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


class SvgDocument:
    """An append-only SVG document with a fixed pixel viewport."""

    def __init__(self, width: int, height: int, background: str | None = "#ffffff"):
        if width <= 0 or height <= 0:
            raise ValueError("viewport must be positive")
        self.width = width
        self.height = height
        self._parts: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- primitives ------------------------------------------------------

    def _element(self, tag: str, attrs: dict, title: str | None = None, text: str | None = None) -> None:
        rendered = " ".join(
            f'{k.replace("_", "-")}="{escape(str(v))}"' for k, v in attrs.items() if v is not None
        )
        if title is None and text is None:
            self._parts.append(f"<{tag} {rendered}/>")
            return
        inner = ""
        if title is not None:
            inner += f"<title>{escape(title)}</title>"
        if text is not None:
            inner += escape(text)
        self._parts.append(f"<{tag} {rendered}>{inner}</{tag}>")

    def rect(
        self, x: float, y: float, w: float, h: float,
        fill: str = "#000000", stroke: str | None = "#333333",
        stroke_width: float = 0.5, opacity: float = 1.0, title: str | None = None,
    ) -> None:
        """Append a rectangle."""
        self._element(
            "rect",
            {
                "x": _fmt(x), "y": _fmt(y), "width": _fmt(w), "height": _fmt(h),
                "fill": fill, "stroke": stroke, "stroke_width": stroke_width,
                "opacity": opacity if opacity < 1.0 else None,
            },
            title,
        )

    def circle(
        self, cx: float, cy: float, r: float,
        fill: str = "#000000", stroke: str | None = "#333333",
        stroke_width: float = 0.5, opacity: float = 1.0, title: str | None = None,
    ) -> None:
        """Append a circle."""
        self._element(
            "circle",
            {
                "cx": _fmt(cx), "cy": _fmt(cy), "r": _fmt(r),
                "fill": fill, "stroke": stroke, "stroke_width": stroke_width,
                "opacity": opacity if opacity < 1.0 else None,
            },
            title,
        )

    def polygon(
        self, points: list[tuple[float, float]],
        fill: str = "#000000", stroke: str | None = "#333333",
        stroke_width: float = 0.8, opacity: float = 1.0, title: str | None = None,
    ) -> None:
        """Append a polygon from (x, y) vertex pairs."""
        rendered = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._element(
            "polygon",
            {
                "points": rendered, "fill": fill, "stroke": stroke,
                "stroke_width": stroke_width,
                "opacity": opacity if opacity < 1.0 else None,
            },
            title,
        )

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        stroke: str = "#333333", stroke_width: float = 1.0, dash: str | None = None,
    ) -> None:
        """Append a line segment."""
        self._element(
            "line",
            {
                "x1": _fmt(x1), "y1": _fmt(y1), "x2": _fmt(x2), "y2": _fmt(y2),
                "stroke": stroke, "stroke_width": stroke_width,
                "stroke_dasharray": dash,
            },
        )

    def text(
        self, x: float, y: float, content: str,
        size: int = 12, fill: str = "#222222", anchor: str = "start",
        weight: str | None = None, title: str | None = None,
    ) -> None:
        """Append a text element (sans-serif)."""
        self._element(
            "text",
            {
                "x": _fmt(x), "y": _fmt(y), "font_size": size, "fill": fill,
                "text_anchor": anchor, "font_weight": weight,
                "font_family": "sans-serif",
            },
            title,
            content,
        )

    # -- output ------------------------------------------------------------

    def render(self) -> str:
        """The complete SVG document as a string."""
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n{body}\n</svg>'
        )

    def save(self, path) -> None:
        """Write the document to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
