"""Marker clustering for the cluster-marker energy maps.

The cluster-marker map is the paper's novel map type: "Cluster-marker
maps, similarly to the choropleth maps, aggregate multiple certificates
coloring the dynamic markers according to the average of the values of the
aggregated points ... The cardinality of the corresponding cluster affects
the size of the marker and is reported inside the marker" (Section 2.3).

Aggregation follows the greedy-grid strategy of Leaflet.markercluster,
the engine behind the folium maps the authors used: points are bucketed
into a uniform grid whose cell size depends on the zoom level, then each
occupied cell's points join the marker seeded at their mean position.
Re-running with a finer cell size is exactly the paper's "drill down in
the energy map".

Like Leaflet.markercluster's zoom pyramid, zoom levels are built
*hierarchically*: each coarser level groups the markers of the next finer
level rather than re-gridding the raw points.  Independent grids don't
nest (their cell boundaries fall in different places), so a coarser grid
could split a pair of points a finer grid had joined; grouping finer
markers makes drill-down monotone by construction — zooming out can only
merge markers, never split them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo.grid import GridIndex
from ..geo.regions import Granularity

__all__ = ["ClusterMarker", "cluster_markers", "CELL_KM_BY_GRANULARITY"]

#: Grid cell edge (km) per zoom level — coarser zoom, bigger aggregation.
CELL_KM_BY_GRANULARITY = {
    Granularity.CITY: 3.0,
    Granularity.DISTRICT: 1.2,
    Granularity.NEIGHBOURHOOD: 0.45,
    Granularity.UNIT: 0.0,  # no aggregation: one marker per certificate
}


@dataclass
class ClusterMarker:
    """One aggregated marker on the map."""

    latitude: float
    longitude: float
    count: int
    mean_value: float
    member_indices: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0, dtype=np.intp))

    @property
    def label(self) -> str:
        """The cardinality printed inside the marker (paper, Section 2.3)."""
        return str(self.count)


def cluster_markers(
    latitudes: np.ndarray,
    longitudes: np.ndarray,
    values: np.ndarray,
    granularity: Granularity = Granularity.CITY,
    cell_km: float | None = None,
) -> list[ClusterMarker]:
    """Aggregate certificates into cluster markers for one zoom level.

    ``values`` is the response variable whose per-marker mean colors the
    marker.  Rows with missing coordinates are skipped; rows with missing
    values still count toward cardinality but not toward the mean.
    ``cell_km`` overrides the granularity's default cell size.

    At UNIT granularity (or ``cell_km == 0``) every certificate becomes
    its own marker — the fully drilled-down view.
    """
    latitudes = np.asarray(latitudes, dtype=np.float64)
    longitudes = np.asarray(longitudes, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if not (len(latitudes) == len(longitudes) == len(values)):
        raise ValueError("latitude/longitude/value arrays must be aligned")

    size = CELL_KM_BY_GRANULARITY[granularity] if cell_km is None else cell_km
    valid = ~(np.isnan(latitudes) | np.isnan(longitudes))

    if size <= 0:
        return [
            ClusterMarker(
                latitude=float(latitudes[i]),
                longitude=float(longitudes[i]),
                count=1,
                mean_value=float(values[i]),
                member_indices=np.asarray([i], dtype=np.intp),
            )
            for i in np.flatnonzero(valid)
        ]

    if cell_km is not None:
        levels = [cell_km]
    else:
        # finest non-unit level first, up to the requested zoom — each
        # level groups the previous one's markers (see module docstring)
        levels = [
            CELL_KM_BY_GRANULARITY[g]
            for g in (Granularity.NEIGHBOURHOOD, Granularity.DISTRICT,
                      Granularity.CITY)
            if g >= granularity
        ]

    groups: list[np.ndarray] = [
        np.asarray([i], dtype=np.intp) for i in np.flatnonzero(valid)
    ]
    for level_km in levels:
        group_lats = np.asarray([latitudes[g].mean() for g in groups])
        group_lons = np.asarray([longitudes[g].mean() for g in groups])
        index = GridIndex(group_lats, group_lons, cell_km=level_km)
        groups = [
            np.sort(np.concatenate([groups[i] for i in members]))
            for cell, members in sorted(index.cells().items())
        ]

    markers: list[ClusterMarker] = []
    for member_idx in groups:
        member_values = values[member_idx]
        present = member_values[~np.isnan(member_values)]
        markers.append(
            ClusterMarker(
                latitude=float(latitudes[member_idx].mean()),
                longitude=float(longitudes[member_idx].mean()),
                count=len(member_idx),
                mean_value=float(present.mean()) if len(present) else float("nan"),
                member_indices=member_idx,
            )
        )
    return markers


def marker_radius(count: int, max_count: int, min_px: float = 9.0, max_px: float = 26.0) -> float:
    """Marker pixel radius from its cardinality (sqrt area scaling).

    Square-root scaling keeps marker *area* proportional to cardinality,
    the visual convention Leaflet.markercluster follows.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if max_count < count:
        raise ValueError("max_count must be >= count")
    t = np.sqrt(count / max_count)
    return float(min_px + (max_px - min_px) * t)
