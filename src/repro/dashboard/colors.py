"""Color scales for the INDICE energy maps and charts.

Choropleth and cluster-marker maps color regions/markers "according to the
average value of the considered variable" (paper, Section 2.3); the
correlation matrix uses "a gray level in the black-and-white scale".  This
module provides those scales without any plotting dependency:

* :class:`SequentialScale` — multi-stop linear interpolation in RGB, with
  an energy-map default ramp (green = efficient, red = demanding);
* :class:`GrayScale` — |rho| -> gray, Figure 3's encoding;
* :data:`CATEGORICAL_PALETTE` — distinguishable hues for cluster ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "hex_to_rgb",
    "rgb_to_hex",
    "interpolate_hex",
    "SequentialScale",
    "GrayScale",
    "CATEGORICAL_PALETTE",
    "categorical_color",
    "ENERGY_RAMP",
]


def hex_to_rgb(color: str) -> tuple[int, int, int]:
    """``'#a1b2c3' -> (161, 178, 195)``."""
    color = color.lstrip("#")
    if len(color) != 6:
        raise ValueError(f"expected #rrggbb, got {color!r}")
    return tuple(int(color[i : i + 2], 16) for i in (0, 2, 4))


def rgb_to_hex(rgb: tuple[int, int, int]) -> str:
    """``(161, 178, 195) -> '#a1b2c3'``."""
    return "#" + "".join(f"{max(0, min(255, int(round(c)))):02x}" for c in rgb)


def interpolate_hex(a: str, b: str, t: float) -> str:
    """Linear interpolation between two hex colors, t in [0, 1]."""
    t = min(max(t, 0.0), 1.0)
    ra, ga, ba = hex_to_rgb(a)
    rb, gb, bb = hex_to_rgb(b)
    return rgb_to_hex((ra + (rb - ra) * t, ga + (gb - ga) * t, ba + (bb - ba) * t))


#: Green -> yellow -> red ramp: low energy demand reads as good.
ENERGY_RAMP = ("#1a9850", "#fee08b", "#d73027")


@dataclass
class SequentialScale:
    """A piecewise-linear color ramp over a numeric domain.

    ``missing_color`` is returned for NaN input (areas with no data are
    drawn hollow, not misleadingly colored).
    """

    vmin: float
    vmax: float
    stops: tuple[str, ...] = ENERGY_RAMP
    missing_color: str = "#cccccc"

    def __post_init__(self):
        if len(self.stops) < 2:
            raise ValueError("a scale needs at least 2 color stops")
        if self.vmax < self.vmin:
            raise ValueError("vmax must be >= vmin")

    @classmethod
    def from_values(
        cls, values, stops: tuple[str, ...] = ENERGY_RAMP, missing_color: str = "#cccccc"
    ) -> "SequentialScale":
        """Fit the domain to the data's non-missing min/max."""
        arr = np.asarray(values, dtype=np.float64)
        present = arr[~np.isnan(arr)]
        if len(present) == 0:
            return cls(0.0, 1.0, stops, missing_color)
        return cls(float(present.min()), float(present.max()), stops, missing_color)

    def normalized(self, value: float) -> float:
        """Value mapped into [0, 1] over the domain (clamped)."""
        if self.vmax == self.vmin:
            return 0.5
        return min(max((value - self.vmin) / (self.vmax - self.vmin), 0.0), 1.0)

    def color(self, value: float) -> str:
        """The hex color of *value*; NaN maps to ``missing_color``."""
        if value is None or np.isnan(value):
            return self.missing_color
        t = self.normalized(value) * (len(self.stops) - 1)
        i = min(int(t), len(self.stops) - 2)
        return interpolate_hex(self.stops[i], self.stops[i + 1], t - i)

    def legend_ticks(self, n: int = 5) -> list[tuple[float, str]]:
        """(value, color) pairs evenly spanning the domain."""
        if n < 2:
            raise ValueError("a legend needs at least 2 ticks")
        values = np.linspace(self.vmin, self.vmax, n)
        return [(float(v), self.color(float(v))) for v in values]


@dataclass
class GrayScale:
    """|value| in [0, 1] -> gray level; 1 is black (Figure 3's encoding)."""

    def color(self, value: float) -> str:
        """The hex color encoding *value*."""
        if value is None or np.isnan(value):
            return "#ffffff"
        level = min(max(abs(value), 0.0), 1.0)
        channel = int(round(255 * (1.0 - level)))
        return rgb_to_hex((channel, channel, channel))


#: Qualitative palette for cluster identities (colorblind-safe base hues).
CATEGORICAL_PALETTE = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#995522",
    "#004488", "#997700",
)


def categorical_color(index: int) -> str:
    """A stable color for cluster / category *index* (cycles past 10)."""
    return CATEGORICAL_PALETTE[index % len(CATEGORICAL_PALETTE)]
