"""Informative charts: distributions, boxplots, the correlation matrix,
and the tabular views (rules, summaries).

These are the non-map components of the INDICE dashboards (paper,
Section 2.3): frequency distribution plots (histograms / bar charts,
optionally colored by a response variable or cluster), the gray-scale
correlation plot matrix of Figure 3, the tabular top-k association-rule
view, and the statistical summary panel.  Charts render to SVG; tables
render to HTML fragments the dashboard assembler embeds.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

import numpy as np

from ..analytics.correlation import CorrelationMatrix
from ..analytics.rules import AssociationRule
from ..analytics.stats import CategoricalSummary, Histogram, NumericSummary
from ..preprocessing.outliers import OutlierResult
from .colors import GrayScale, categorical_color
from .svg import SvgDocument

__all__ = [
    "histogram_chart",
    "grouped_histogram_chart",
    "bar_chart",
    "boxplot_chart",
    "correlation_matrix_chart",
    "dendrogram_chart",
    "rules_table_html",
    "summary_table_html",
]

_MARGIN = 42
_TICK = 10


def _frame(doc: SvgDocument, x0, y0, x1, y1):
    doc.line(x0, y1, x1, y1, stroke="#445", stroke_width=1.2)  # x axis
    doc.line(x0, y0, x0, y1, stroke="#445", stroke_width=1.2)  # y axis


def histogram_chart(
    hist: Histogram, width: int = 440, height: int = 260,
    color: str = "#4477aa", title: str | None = None,
) -> str:
    """A single frequency-distribution plot."""
    doc = SvgDocument(width, height)
    title = title or f"Distribution of {hist.attribute}"
    doc.text(_MARGIN, 18, title, size=13, weight="bold")
    x0, y0, x1, y1 = _MARGIN, 30, width - 14, height - _MARGIN
    _frame(doc, x0, y0, x1, y1)
    max_count = max(int(hist.counts.max()), 1) if len(hist.counts) else 1
    n_bins = len(hist.counts)
    if n_bins:
        bar_w = (x1 - x0) / n_bins
        for i, count in enumerate(hist.counts):
            h = (y1 - y0) * count / max_count
            doc.rect(
                x0 + i * bar_w + 1, y1 - h, bar_w - 2, h,
                fill=color, stroke="none", opacity=0.9,
                title=f"[{hist.edges[i]:.3g}, {hist.edges[i + 1]:.3g}): {count}",
            )
        doc.text(x0, y1 + 16, f"{hist.edges[0]:.3g}", size=_TICK)
        doc.text(x1, y1 + 16, f"{hist.edges[-1]:.3g}", size=_TICK, anchor="end")
    doc.text(x0 - 4, y0 + 8, str(max_count), size=_TICK, anchor="end")
    doc.text(x0 - 4, y1, "0", size=_TICK, anchor="end")
    return doc.render()


def grouped_histogram_chart(
    histograms: dict[object, Histogram], attribute: str,
    width: int = 520, height: int = 300,
) -> str:
    """Overlaid per-group distributions (Figure 4's per-cluster EP_H view).

    All histograms must share bin edges (see
    :func:`repro.analytics.stats.grouped_histograms`); each group renders
    as a translucent stepped area in its categorical color.
    """
    doc = SvgDocument(width, height)
    doc.text(_MARGIN, 18, f"Distribution of {attribute} per group", size=13, weight="bold")
    x0, y0, x1, y1 = _MARGIN, 30, width - 130, height - _MARGIN
    _frame(doc, x0, y0, x1, y1)
    keys = sorted(histograms, key=str)
    if not keys:
        return doc.render()
    edges = histograms[keys[0]].edges
    max_density = max(
        (h.densities().max() if len(h.counts) else 0.0) for h in histograms.values()
    ) or 1.0
    n_bins = len(edges) - 1
    bar_w = (x1 - x0) / max(n_bins, 1)
    for gi, key in enumerate(keys):
        hist = histograms[key]
        color = categorical_color(gi)
        densities = hist.densities()
        points = [(x0, y1)]
        for i, d in enumerate(densities):
            h = (y1 - y0) * d / max_density
            points.append((x0 + i * bar_w, y1 - h))
            points.append((x0 + (i + 1) * bar_w, y1 - h))
        points.append((x1, y1))
        doc.polygon(points, fill=color, stroke=color, stroke_width=1.2,
                    opacity=0.30, title=f"group {key}: n = {hist.n}")
        # legend entry
        ly = y0 + 14 + gi * 18
        doc.rect(x1 + 12, ly - 9, 12, 12, fill=color, stroke="none")
        doc.text(x1 + 30, ly, f"{key} (n={hist.n})", size=11)
    doc.text(x0, y1 + 16, f"{edges[0]:.3g}", size=_TICK)
    doc.text(x1, y1 + 16, f"{edges[-1]:.3g}", size=_TICK, anchor="end")
    return doc.render()


def bar_chart(
    counts: list[tuple[str, int]], attribute: str,
    width: int = 440, height: int = 260, color: str = "#4477aa",
) -> str:
    """Categorical frequency bar chart (e.g. energy-class distribution)."""
    doc = SvgDocument(width, height)
    doc.text(_MARGIN, 18, f"Frequency of {attribute}", size=13, weight="bold")
    x0, y0, x1, y1 = _MARGIN, 30, width - 14, height - _MARGIN
    _frame(doc, x0, y0, x1, y1)
    if counts:
        max_count = max(c for __, c in counts) or 1
        bar_w = (x1 - x0) / len(counts)
        for i, (label, count) in enumerate(counts):
            h = (y1 - y0) * count / max_count
            doc.rect(x0 + i * bar_w + 2, y1 - h, bar_w - 4, h, fill=color,
                     stroke="none", opacity=0.9, title=f"{label}: {count}")
            doc.text(x0 + (i + 0.5) * bar_w, y1 + 14, str(label)[:8], size=9,
                     anchor="middle")
    return doc.render()


def boxplot_chart(
    result: OutlierResult, values: np.ndarray, attribute: str,
    width: int = 440, height: int = 170,
) -> str:
    """The whiskers plot of one attribute with its outliers marked.

    Draws the box (Q1..Q3), the median, the Tukey fences and each flagged
    outlier as a red point — the "graphic boxplot method" the analyst uses
    to filter values manually (paper, Section 2.1.2).
    """
    d = result.diagnostics
    doc = SvgDocument(width, height)
    doc.text(_MARGIN, 18, f"Boxplot of {attribute}", size=13, weight="bold")
    values = np.asarray(values, dtype=np.float64)
    present = values[~np.isnan(values)]
    if len(present) == 0 or "q1" not in d:
        return doc.render()
    lo = float(min(present.min(), d["lower_fence"]))
    hi = float(max(present.max(), d["upper_fence"]))
    span = hi - lo or 1.0
    x0, x1 = _MARGIN, width - 20
    y_mid, box_h = 88, 40

    def x_of(v: float) -> float:
        return x0 + (v - lo) / span * (x1 - x0)

    # whiskers (clipped to data range), box, median
    left_whisk = max(d["lower_fence"], float(present.min()))
    right_whisk = min(d["upper_fence"], float(present.max()))
    doc.line(x_of(left_whisk), y_mid, x_of(d["q1"]), y_mid, stroke="#445")
    doc.line(x_of(d["q3"]), y_mid, x_of(right_whisk), y_mid, stroke="#445")
    doc.line(x_of(left_whisk), y_mid - 10, x_of(left_whisk), y_mid + 10, stroke="#445")
    doc.line(x_of(right_whisk), y_mid - 10, x_of(right_whisk), y_mid + 10, stroke="#445")
    doc.rect(x_of(d["q1"]), y_mid - box_h / 2, x_of(d["q3"]) - x_of(d["q1"]), box_h,
             fill="#a8c6e8", stroke="#445",
             title=f"Q1={d['q1']:.3g}  median={d['median']:.3g}  Q3={d['q3']:.3g}")
    doc.line(x_of(d["median"]), y_mid - box_h / 2, x_of(d["median"]), y_mid + box_h / 2,
             stroke="#1c2733", stroke_width=2.0)
    for i in result.outlier_indices():
        doc.circle(x_of(float(values[i])), y_mid, 3.2, fill="#d73027", stroke="none",
                   opacity=0.8, title=f"outlier: {values[i]:.4g}")
    doc.text(x0, y_mid + box_h / 2 + 24, f"{lo:.3g}", size=_TICK)
    doc.text(x1, y_mid + box_h / 2 + 24, f"{hi:.3g}", size=_TICK, anchor="end")
    return doc.render()


def correlation_matrix_chart(
    matrix: CorrelationMatrix, width: int = 460, cell_px: int | None = None,
) -> str:
    """Figure 3: the gray-scale correlation plot matrix.

    Dark squares = high |rho|, light = low; the diagonal is black by
    construction.  Each cell's tooltip carries the exact coefficient.
    """
    names = matrix.attributes
    n = len(names)
    label_w = 120
    cell = cell_px or max(28, (width - label_w - 20) // max(n, 1))
    w = label_w + n * cell + 20
    h = 40 + n * cell + 70
    doc = SvgDocument(w, h)
    doc.text(14, 22, "Correlation matrix (Pearson)", size=13, weight="bold")
    gray = GrayScale()
    x0, y0 = label_w, 40
    for i in range(n):
        doc.text(x0 - 8, y0 + i * cell + cell / 2 + 4, names[i][:16], size=10, anchor="end")
        doc.text(x0 + i * cell + cell / 2, y0 + n * cell + 14, names[i][:8], size=9,
                 anchor="middle")
        for j in range(n):
            rho = float(matrix.matrix[i, j])
            tooltip = f"rho({names[i]}, {names[j]}) = " + (
                "n/a" if np.isnan(rho) else f"{rho:.3f}"
            )
            doc.rect(x0 + j * cell, y0 + i * cell, cell - 1, cell - 1,
                     fill=gray.color(rho), stroke="#d8dde3", stroke_width=0.5,
                     title=tooltip)
    # gray legend
    ly = y0 + n * cell + 34
    for i in range(20):
        doc.rect(x0 + i * 8, ly, 8, 10, fill=gray.color(i / 19), stroke="none")
    doc.text(x0, ly + 24, "|rho| = 0", size=9)
    doc.text(x0 + 160, ly + 24, "|rho| = 1", size=9, anchor="end")
    return doc.render()


def dendrogram_chart(
    heights: list[float], suggested_k: int | None = None,
    width: int = 440, height: int = 240, max_merges: int = 30,
) -> str:
    """The tail of a dendrogram's merge-height curve.

    Hierarchical clustering communicates its structure through the growth
    of merge heights: a sharp jump marks the natural cluster count.  This
    chart plots the last *max_merges* heights as bars (left = coarser
    cuts) and marks the suggested K, giving the analyst the hierarchical
    counterpart of the SSE elbow plot.
    """
    doc = SvgDocument(width, height)
    doc.text(_MARGIN, 18, "Dendrogram merge heights (tail)", size=13, weight="bold")
    x0, y0, x1, y1 = _MARGIN, 30, width - 14, height - _MARGIN
    _frame(doc, x0, y0, x1, y1)
    tail = list(heights)[-max_merges:]
    if not tail:
        return doc.render()
    top = max(tail) or 1.0
    bar_w = (x1 - x0) / len(tail)
    for i, h in enumerate(tail):
        px = (y1 - y0) * h / top
        # cutting just before merge i leaves (len(tail) - i) clusters
        k_here = len(tail) - i
        is_suggested = suggested_k is not None and k_here == suggested_k
        doc.rect(
            x0 + i * bar_w + 1, y1 - px, bar_w - 2, px,
            fill="#d73027" if is_suggested else "#4477aa", stroke="none",
            opacity=0.9, title=f"cut at K={k_here}: merge height {h:.3g}",
        )
    doc.text(x0, y1 + 16, f"K={len(tail)}", size=_TICK)
    doc.text(x1, y1 + 16, "K=1", size=_TICK, anchor="end")
    if suggested_k is not None:
        doc.text(x1, y0 + 10, f"suggested K = {suggested_k}", size=11,
                 anchor="end", fill="#d73027", weight="bold")
    return doc.render()


def rules_table_html(rules: list[AssociationRule], max_rows: int = 20) -> str:
    """The paper's tabular association-rule view (top rules, 4 indices)."""
    head = (
        "<table class='indice-table'><thead><tr>"
        "<th>#</th><th>Rule</th><th>Support</th><th>Confidence</th>"
        "<th>Lift</th><th>Conviction</th></tr></thead><tbody>"
    )
    body = []
    for i, rule in enumerate(rules[:max_rows], start=1):
        conviction = "&infin;" if np.isinf(rule.conviction) else f"{rule.conviction:.2f}"
        body.append(
            f"<tr><td>{i}</td><td>{escape(str(rule))}</td>"
            f"<td>{rule.support:.3f}</td><td>{rule.confidence:.3f}</td>"
            f"<td>{rule.lift:.2f}</td><td>{conviction}</td></tr>"
        )
    return head + "".join(body) + "</tbody></table>"


def summary_table_html(
    summaries: dict[str, NumericSummary | CategoricalSummary]
) -> str:
    """The statistical-indices panel: numeric and categorical summaries."""
    numeric_rows = []
    categorical_rows = []
    for name, s in summaries.items():
        if isinstance(s, NumericSummary):
            numeric_rows.append(
                f"<tr><td>{escape(name)}</td><td>{s.count}</td>"
                f"<td>{s.mean:.3g}</td><td>{s.std:.3g}</td>"
                f"<td>{s.q1:.3g}</td><td>{s.median:.3g}</td><td>{s.q3:.3g}</td></tr>"
            )
        else:
            top = ", ".join(f"{escape(str(v))} ({c})" for v, c in s.top_values)
            categorical_rows.append(
                f"<tr><td>{escape(name)}</td><td>{s.count}</td>"
                f"<td>{escape(str(s.mode))}</td><td>{s.mode_frequency}</td>"
                f"<td>{top}</td></tr>"
            )
    parts = []
    if numeric_rows:
        parts.append(
            "<table class='indice-table'><thead><tr><th>Attribute</th>"
            "<th>Count</th><th>Mean</th><th>Std</th><th>Q1</th>"
            "<th>Median</th><th>Q3</th></tr></thead><tbody>"
            + "".join(numeric_rows) + "</tbody></table>"
        )
    if categorical_rows:
        parts.append(
            "<table class='indice-table'><thead><tr><th>Attribute</th>"
            "<th>Count</th><th>Mode</th><th>Mode freq.</th><th>Top values</th>"
            "</tr></thead><tbody>" + "".join(categorical_rows) + "</tbody></table>"
        )
    return "\n".join(parts)
