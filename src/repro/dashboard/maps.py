"""The three INDICE energy maps: choropleth, scatter and cluster-marker.

"In choropleth maps each area (at different zoom levels) is colored
according to the average value of the considered variable ... The scatter
maps report a point and its corresponding value for each EPC ...
Cluster-marker maps ... aggregate multiple certificates coloring the
dynamic markers according to the average of the values of the aggregated
points" (paper, Section 2.3).

Every map renders to (a) a standalone SVG with hover tooltips and a
legend, and (b) a GeoJSON FeatureCollection for GIS tools — together they
replace the folium/Leaflet layer of the original system.  The three map
builders share one :class:`MapCanvas` projection, so a dashboard can
overlay them (Figure 2 upper shows a choropleth with scatter markers on
top) and switch among them when the user changes the analysis zoom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo import geojson
from ..geo.regions import Granularity, Region, RegionHierarchy
from .colors import SequentialScale, categorical_color
from .markercluster import cluster_markers, marker_radius
from .svg import SvgDocument

__all__ = [
    "MapRender",
    "MapCanvas",
    "choropleth_map",
    "categorical_choropleth_map",
    "scatter_map",
    "cluster_marker_map",
    "choropleth_with_scatter_map",
]


@dataclass
class MapRender:
    """A rendered energy map: SVG for humans, GeoJSON for tools."""

    title: str
    svg: str
    geojson: dict = field(default_factory=dict)

    def save_svg(self, path) -> None:
        """Write the SVG document to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.svg)

    def save_geojson(self, path) -> None:
        """Write the GeoJSON layer to *path* (pretty-printed)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(geojson.dumps(self.geojson, indent=2))


class MapCanvas:
    """Projects a geographic bounding box onto a pixel viewport.

    Equirectangular projection with the aspect ratio corrected by the
    cosine of the central latitude — visually faithful at city scale.
    """

    def __init__(
        self,
        bounds: tuple[float, float, float, float],
        width: int = 760,
        padding: int = 18,
        legend_height: int = 46,
    ):
        lo_lat, lo_lon, hi_lat, hi_lon = bounds
        if hi_lat <= lo_lat or hi_lon <= lo_lon:
            raise ValueError(f"degenerate bounds {bounds}")
        self.bounds = bounds
        self.padding = padding
        self.legend_height = legend_height
        mid_lat = (lo_lat + hi_lat) / 2
        lon_scale = np.cos(np.radians(mid_lat))
        geo_w = (hi_lon - lo_lon) * lon_scale
        geo_h = hi_lat - lo_lat
        draw_w = width - 2 * padding
        draw_h = int(draw_w * geo_h / geo_w)
        self.width = width
        self.height = draw_h + 2 * padding + legend_height
        self._draw_w = draw_w
        self._draw_h = draw_h
        self._lon_scale = lon_scale

    @classmethod
    def for_regions(cls, regions: list[Region], **kwargs) -> "MapCanvas":
        """A canvas framing the union of the regions' bounding boxes."""
        boxes = [r.bounding_box() for r in regions]
        return cls(
            (
                min(b[0] for b in boxes),
                min(b[1] for b in boxes),
                max(b[2] for b in boxes),
                max(b[3] for b in boxes),
            ),
            **kwargs,
        )

    @classmethod
    def for_points(cls, latitudes, longitudes, **kwargs) -> "MapCanvas":
        """A canvas framing the located points with a small margin."""
        lat = np.asarray(latitudes, dtype=np.float64)
        lon = np.asarray(longitudes, dtype=np.float64)
        keep = ~(np.isnan(lat) | np.isnan(lon))
        lat, lon = lat[keep], lon[keep]
        if len(lat) == 0:
            raise ValueError("no located points to frame")
        pad_lat = max((lat.max() - lat.min()) * 0.05, 1e-4)
        pad_lon = max((lon.max() - lon.min()) * 0.05, 1e-4)
        return cls(
            (lat.min() - pad_lat, lon.min() - pad_lon, lat.max() + pad_lat, lon.max() + pad_lon),
            **kwargs,
        )

    def project(self, lat: float, lon: float) -> tuple[float, float]:
        """(lat, lon) -> pixel (x, y); y grows downward."""
        lo_lat, lo_lon, hi_lat, hi_lon = self.bounds
        x = self.padding + (lon - lo_lon) / (hi_lon - lo_lon) * self._draw_w
        y = self.padding + (hi_lat - lat) / (hi_lat - lo_lat) * self._draw_h
        return x, y

    def new_document(self, title: str) -> SvgDocument:
        """A fresh SVG document titled *title* over this canvas."""
        doc = SvgDocument(self.width, self.height, background="#f7f9fb")
        doc.text(self.padding, self.padding - 4, title, size=13, weight="bold")
        return doc

    def draw_region_outline(self, doc: SvgDocument, region: Region,
                            fill: str = "none", title: str | None = None,
                            opacity: float = 1.0) -> None:
        """Draw *region* as an outlined polygon on *doc*."""
        points = [self.project(lat, lon) for lat, lon in region.ring]
        doc.polygon(points, fill=fill, stroke="#7a8a99", stroke_width=1.0,
                    opacity=opacity, title=title)

    def draw_legend(self, doc: SvgDocument, scale: SequentialScale, label: str) -> None:
        """A horizontal color-bar legend under the map."""
        y = self.height - self.legend_height + 14
        x0 = self.padding
        bar_w = min(260, self.width - 2 * self.padding)
        steps = 40
        for i in range(steps):
            t = i / (steps - 1)
            value = scale.vmin + t * (scale.vmax - scale.vmin)
            doc.rect(x0 + i * bar_w / steps, y, bar_w / steps + 0.5, 10,
                     fill=scale.color(value), stroke="none")
        doc.text(x0, y + 24, f"{scale.vmin:.3g}", size=10)
        doc.text(x0 + bar_w, y + 24, f"{scale.vmax:.3g}", size=10, anchor="end")
        doc.text(x0 + bar_w / 2, y + 24, label, size=10, anchor="middle")


def choropleth_map(
    hierarchy: RegionHierarchy,
    level: Granularity,
    region_values: dict[str, float],
    attribute: str,
    title: str | None = None,
    scale: SequentialScale | None = None,
) -> MapRender:
    """Color each region at *level* by its aggregated attribute value.

    ``region_values`` maps region name -> aggregate (typically the mean
    from :meth:`QueryEngine.aggregate`); regions with no entry (or NaN)
    render in the scale's missing color.
    """
    regions = hierarchy.regions_at(level)
    if not regions:
        raise ValueError(f"no polygonal regions at level {level.name}")
    title = title or f"Average {attribute} by {level.name.lower()}"
    canvas = MapCanvas.for_regions(regions)
    scale = scale or SequentialScale.from_values(list(region_values.values()))
    doc = canvas.new_document(title)
    features = []
    for region in regions:
        value = region_values.get(region.name, float("nan"))
        color = scale.color(value)
        points = [canvas.project(lat, lon) for lat, lon in region.ring]
        tooltip = (
            f"{region.name}: {attribute} = "
            + (f"{value:.2f}" if not np.isnan(value) else "no data")
        )
        doc.polygon(points, fill=color, stroke="#51606e", stroke_width=1.0,
                    opacity=0.88, title=tooltip)
        features.append(
            geojson.region_feature(region, {attribute: None if np.isnan(value) else value})
        )
    canvas.draw_legend(doc, scale, attribute)
    return MapRender(title, doc.render(), geojson.feature_collection(features))


def categorical_choropleth_map(
    hierarchy: RegionHierarchy,
    level: Granularity,
    region_modes: dict[str, tuple[str, float]],
    attribute: str,
    title: str | None = None,
) -> MapRender:
    """Choropleth for a categorical attribute: each region takes the color
    of its dominant category, with opacity encoding the dominance share.

    ``region_modes`` maps region name -> ``(dominant_value, share)`` (e.g.
    the modal energy class per neighbourhood).  A swatch legend lists the
    categories in play.
    """
    regions = hierarchy.regions_at(level)
    if not regions:
        raise ValueError(f"no polygonal regions at level {level.name}")
    title = title or f"Dominant {attribute} by {level.name.lower()}"
    canvas = MapCanvas.for_regions(regions)
    categories = sorted({mode for mode, __ in region_modes.values()})
    color_of = {cat: categorical_color(i) for i, cat in enumerate(categories)}

    doc = canvas.new_document(title)
    features = []
    for region in regions:
        mode = region_modes.get(region.name)
        points = [canvas.project(lat, lon) for lat, lon in region.ring]
        if mode is None:
            doc.polygon(points, fill="#cccccc", stroke="#51606e",
                        title=f"{region.name}: no data")
            features.append(geojson.region_feature(region, {attribute: None}))
            continue
        value, share = mode
        doc.polygon(
            points, fill=color_of[value], stroke="#51606e", stroke_width=1.0,
            opacity=0.35 + 0.6 * min(max(share, 0.0), 1.0),
            title=f"{region.name}: {attribute} = {value} ({share:.0%})",
        )
        features.append(
            geojson.region_feature(region, {attribute: value, "share": share})
        )
    # swatch legend
    y = canvas.height - canvas.legend_height + 12
    x = canvas.padding
    for cat in categories:
        doc.rect(x, y, 12, 12, fill=color_of[cat], stroke="none")
        doc.text(x + 16, y + 10, str(cat)[:14], size=10)
        x += 22 + 7 * min(len(str(cat)), 14)
    return MapRender(title, doc.render(), geojson.feature_collection(features))


def scatter_map(
    latitudes: np.ndarray,
    longitudes: np.ndarray,
    values: np.ndarray,
    attribute: str,
    hierarchy: RegionHierarchy | None = None,
    outline_level: Granularity = Granularity.DISTRICT,
    title: str | None = None,
    scale: SequentialScale | None = None,
    point_radius: float = 2.6,
    max_points: int | None = None,
) -> MapRender:
    """One colored point per certificate (the paper's scatter map).

    When *hierarchy* is given, region outlines at *outline_level* are drawn
    under the points so the user keeps spatial orientation while drilled
    down.  ``max_points`` subsamples deterministically for huge selections.
    """
    latitudes = np.asarray(latitudes, dtype=np.float64)
    longitudes = np.asarray(longitudes, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    keep = np.flatnonzero(~(np.isnan(latitudes) | np.isnan(longitudes)))
    if max_points is not None and len(keep) > max_points:
        stride = int(np.ceil(len(keep) / max_points))
        keep = keep[::stride]
    title = title or f"{attribute} per certificate"
    if hierarchy is not None:
        canvas = MapCanvas.for_regions(hierarchy.regions_at(Granularity.CITY))
    else:
        canvas = MapCanvas.for_points(latitudes[keep], longitudes[keep])
    scale = scale or SequentialScale.from_values(values[keep])
    doc = canvas.new_document(title)
    if hierarchy is not None:
        for region in hierarchy.regions_at(outline_level):
            canvas.draw_region_outline(doc, region, title=region.name)
    features = []
    for i in keep:
        x, y = canvas.project(float(latitudes[i]), float(longitudes[i]))
        value = float(values[i])
        tooltip = f"{attribute} = " + ("missing" if np.isnan(value) else f"{value:.2f}")
        doc.circle(x, y, point_radius, fill=scale.color(value), stroke="none",
                   opacity=0.85, title=tooltip)
        features.append(
            geojson.point_feature(
                float(latitudes[i]), float(longitudes[i]),
                {attribute: None if np.isnan(value) else value},
            )
        )
    canvas.draw_legend(doc, scale, attribute)
    return MapRender(title, doc.render(), geojson.feature_collection(features))


def choropleth_with_scatter_map(
    hierarchy: RegionHierarchy,
    level: Granularity,
    region_values: dict[str, float],
    latitudes: np.ndarray,
    longitudes: np.ndarray,
    values: np.ndarray,
    attribute: str,
    title: str | None = None,
    max_points: int | None = 4000,
) -> MapRender:
    """Figure 2's upper view: area averages with per-certificate markers.

    "The choropleth map shows the average value of the attributes for the
    selected area together with the scatter marker of each single point"
    (paper, Section 3).  Both layers share one canvas and one color scale,
    so a marker brighter than its area reads immediately as an outlier
    within its neighbourhood.
    """
    regions = hierarchy.regions_at(level)
    if not regions:
        raise ValueError(f"no polygonal regions at level {level.name}")
    title = title or f"Average and per-certificate {attribute} ({level.name.lower()})"
    canvas = MapCanvas.for_regions(hierarchy.regions_at(Granularity.CITY))

    latitudes = np.asarray(latitudes, dtype=np.float64)
    longitudes = np.asarray(longitudes, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    keep = np.flatnonzero(~(np.isnan(latitudes) | np.isnan(longitudes)))
    if max_points is not None and len(keep) > max_points:
        stride = int(np.ceil(len(keep) / max_points))
        keep = keep[::stride]

    # one scale across both layers
    pool = list(region_values.values()) + [float(v) for v in values[keep]]
    scale = SequentialScale.from_values(pool)

    doc = canvas.new_document(title)
    features = []
    for region in regions:
        value = region_values.get(region.name, float("nan"))
        points = [canvas.project(lat, lon) for lat, lon in region.ring]
        tooltip = (
            f"{region.name}: mean {attribute} = "
            + (f"{value:.2f}" if not np.isnan(value) else "no data")
        )
        doc.polygon(points, fill=scale.color(value), stroke="#51606e",
                    stroke_width=1.0, opacity=0.55, title=tooltip)
        features.append(
            geojson.region_feature(region, {attribute: None if np.isnan(value) else value})
        )
    for i in keep:
        x, y = canvas.project(float(latitudes[i]), float(longitudes[i]))
        value = float(values[i])
        tooltip = f"{attribute} = " + ("missing" if np.isnan(value) else f"{value:.2f}")
        doc.circle(x, y, 2.4, fill=scale.color(value), stroke="#2b3a48",
                   stroke_width=0.4, opacity=0.95, title=tooltip)
        features.append(
            geojson.point_feature(
                float(latitudes[i]), float(longitudes[i]),
                {attribute: None if np.isnan(value) else value},
            )
        )
    canvas.draw_legend(doc, scale, attribute)
    return MapRender(title, doc.render(), geojson.feature_collection(features))


def cluster_marker_map(
    latitudes: np.ndarray,
    longitudes: np.ndarray,
    values: np.ndarray,
    attribute: str,
    granularity: Granularity = Granularity.CITY,
    hierarchy: RegionHierarchy | None = None,
    title: str | None = None,
    scale: SequentialScale | None = None,
    cell_km: float | None = None,
    cluster_labels: np.ndarray | None = None,
) -> MapRender:
    """The paper's cluster-marker map at a given zoom level.

    Markers aggregate nearby certificates: size and inner label encode
    cardinality, fill encodes the mean of *values*.  When
    ``cluster_labels`` (e.g. K-means assignments) is given, markers are
    built per analytic cluster within each grid cell, and the marker
    stroke takes the cluster's categorical color — the bottom-of-Figure-2
    view that combines spatial and analytic grouping.
    """
    latitudes = np.asarray(latitudes, dtype=np.float64)
    longitudes = np.asarray(longitudes, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    title = title or f"Cluster markers of {attribute} ({granularity.name.lower()} zoom)"

    if cluster_labels is None:
        markers = cluster_markers(latitudes, longitudes, values, granularity, cell_km)
        strokes = ["#51606e"] * len(markers)
    else:
        cluster_labels = np.asarray(cluster_labels)
        markers = []
        strokes = []
        for cluster_id in np.unique(cluster_labels):
            if cluster_id < 0:
                continue  # unassigned rows stay off the map
            rows = np.flatnonzero(cluster_labels == cluster_id)
            for marker in cluster_markers(
                latitudes[rows], longitudes[rows], values[rows], granularity, cell_km
            ):
                marker.member_indices = rows[marker.member_indices]
                markers.append(marker)
                strokes.append(categorical_color(int(cluster_id)))

    if hierarchy is not None:
        canvas = MapCanvas.for_regions(hierarchy.regions_at(Granularity.CITY))
    elif markers:
        canvas = MapCanvas.for_points(
            [m.latitude for m in markers], [m.longitude for m in markers]
        )
    else:
        raise ValueError("no markers and no hierarchy to frame the map")

    mean_values = [m.mean_value for m in markers]
    scale = scale or SequentialScale.from_values(mean_values)
    doc = canvas.new_document(title)
    if hierarchy is not None:
        outline_level = (
            Granularity.DISTRICT if granularity <= Granularity.DISTRICT
            else Granularity.NEIGHBOURHOOD
        )
        for region in hierarchy.regions_at(outline_level):
            canvas.draw_region_outline(doc, region, title=region.name)

    max_count = max((m.count for m in markers), default=1)
    features = []
    for marker, stroke in sorted(
        zip(markers, strokes), key=lambda pair: -pair[0].count
    ):
        x, y = canvas.project(marker.latitude, marker.longitude)
        radius = marker_radius(marker.count, max_count)
        mean_text = "n/a" if np.isnan(marker.mean_value) else f"{marker.mean_value:.2f}"
        tooltip = f"{marker.count} certificates; mean {attribute} = {mean_text}"
        doc.circle(x, y, radius, fill=scale.color(marker.mean_value),
                   stroke=stroke, stroke_width=2.0, opacity=0.92, title=tooltip)
        if radius >= 8:
            doc.text(x, y + 4, marker.label, size=11, anchor="middle",
                     fill="#1c2733", weight="bold", title=tooltip)
        features.append(
            geojson.point_feature(
                marker.latitude, marker.longitude,
                {
                    "count": marker.count,
                    "mean_" + attribute: None if np.isnan(marker.mean_value) else marker.mean_value,
                },
            )
        )
    canvas.draw_legend(doc, scale, f"mean {attribute}")
    return MapRender(title, doc.render(), geojson.feature_collection(features))
