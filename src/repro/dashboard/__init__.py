"""INDICE knowledge-visualization tier: maps, charts, dashboards."""

from .colors import (
    CATEGORICAL_PALETTE,
    ENERGY_RAMP,
    GrayScale,
    SequentialScale,
    categorical_color,
    hex_to_rgb,
    interpolate_hex,
    rgb_to_hex,
)
from .svg import SvgDocument
from .markercluster import (
    CELL_KM_BY_GRANULARITY,
    ClusterMarker,
    cluster_markers,
    marker_radius,
)
from .maps import (
    MapCanvas,
    MapRender,
    categorical_choropleth_map,
    choropleth_map,
    cluster_marker_map,
    scatter_map,
)
from .charts import (
    bar_chart,
    boxplot_chart,
    correlation_matrix_chart,
    dendrogram_chart,
    grouped_histogram_chart,
    histogram_chart,
    rules_table_html,
    summary_table_html,
)
from .dashboard import Dashboard, DashboardBuilder, NavigableDashboard, Panel
from .html import render_page, render_tabbed_page

__all__ = [
    "CATEGORICAL_PALETTE",
    "ENERGY_RAMP",
    "GrayScale",
    "SequentialScale",
    "categorical_color",
    "hex_to_rgb",
    "interpolate_hex",
    "rgb_to_hex",
    "SvgDocument",
    "CELL_KM_BY_GRANULARITY",
    "ClusterMarker",
    "cluster_markers",
    "marker_radius",
    "MapCanvas",
    "MapRender",
    "categorical_choropleth_map",
    "choropleth_map",
    "cluster_marker_map",
    "scatter_map",
    "dendrogram_chart",
    "bar_chart",
    "boxplot_chart",
    "correlation_matrix_chart",
    "grouped_histogram_chart",
    "histogram_chart",
    "rules_table_html",
    "summary_table_html",
    "Dashboard",
    "DashboardBuilder",
    "NavigableDashboard",
    "Panel",
    "render_page",
    "render_tabbed_page",
]
