"""Informative dashboard assembly.

"INDICE includes interactive and navigable dashboards tailored to
different use cases ... the dashboards can be customized for each
end-user, providing deep targeted knowledge for domain experts and
human-readable informative contents for non-expert users" (paper,
Section 2.3).

A :class:`Dashboard` is an ordered collection of :class:`Panel` objects
(each holding a rendered map, chart or table) that serializes to one
standalone HTML page.  :class:`DashboardBuilder` provides the typed
``add_*`` helpers the core engine and the examples use, so the panel
vocabulary stays exactly the paper's: geospatial maps, frequency
distribution plots, association rules and correlation matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..analytics.correlation import CorrelationMatrix
from ..analytics.rules import AssociationRule
from ..analytics.stats import CategoricalSummary, Histogram, NumericSummary
from .charts import (
    bar_chart,
    correlation_matrix_chart,
    grouped_histogram_chart,
    histogram_chart,
    rules_table_html,
    summary_table_html,
)
from .html import render_page, render_tabbed_page
from .maps import MapRender

__all__ = ["Panel", "Dashboard", "DashboardBuilder", "NavigableDashboard"]


@dataclass(frozen=True)
class Panel:
    """One dashboard tile: a title, a caption and a rendered body."""

    title: str
    caption: str
    body: str
    kind: str = "generic"


@dataclass
class Dashboard:
    """A complete dashboard ready to serialize."""

    title: str
    subtitle: str = ""
    panels: list[Panel] = field(default_factory=list)

    def add(self, panel: Panel) -> "Dashboard":
        """Append *panel* and return the dashboard (chainable)."""
        self.panels.append(panel)
        return self

    def panel_titles(self) -> list[str]:
        """Titles of the panels, in display order."""
        return [p.title for p in self.panels]

    def panels_of_kind(self, kind: str) -> list[Panel]:
        """The panels whose kind equals *kind*."""
        return [p for p in self.panels if p.kind == kind]

    def to_html(self) -> str:
        """Render the complete standalone HTML page."""
        return render_page(
            self.title,
            self.subtitle,
            [(p.title, p.caption, p.body) for p in self.panels],
        )

    def save(self, path: str | Path) -> Path:
        """Write the HTML page to *path* (parents created) and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_html(), encoding="utf-8")
        return path


@dataclass
class NavigableDashboard:
    """A multi-zoom dashboard: one tab per spatial granularity.

    This is the paper's "dynamic and navigable" surface: the user switches
    the analysis zoom and the maps re-aggregate accordingly (Section 2.3's
    drill-down), all inside one standalone HTML file.
    """

    title: str
    subtitle: str = ""
    tabs: list[tuple[str, Dashboard]] = field(default_factory=list)

    def add_tab(self, label: str, dashboard: Dashboard) -> "NavigableDashboard":
        """Append a (label, dashboard) tab and return self (chainable)."""
        self.tabs.append((label, dashboard))
        return self

    def tab_labels(self) -> list[str]:
        """The tab labels, in display order."""
        return [label for label, __ in self.tabs]

    def to_html(self) -> str:
        """Render the complete standalone HTML page."""
        return render_tabbed_page(
            self.title,
            self.subtitle,
            [
                (label, [(p.title, p.caption, p.body) for p in dash.panels])
                for label, dash in self.tabs
            ],
        )

    def save(self, path: str | Path) -> Path:
        """Write the HTML page to *path* (parents created) and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_html(), encoding="utf-8")
        return path


class DashboardBuilder:
    """Typed helpers that add the paper's panel kinds to a dashboard."""

    def __init__(self, title: str, subtitle: str = ""):
        self.dashboard = Dashboard(title=title, subtitle=subtitle)

    def add_map(self, render: MapRender, caption: str = "") -> "DashboardBuilder":
        """Add a rendered energy-map panel."""
        self.dashboard.add(Panel(render.title, caption, render.svg, kind="map"))
        return self

    def add_histogram(
        self, hist: Histogram, caption: str = "", title: str | None = None
    ) -> "DashboardBuilder":
        """Add a single frequency-distribution panel."""
        body = histogram_chart(hist, title=title)
        self.dashboard.add(
            Panel(title or f"Distribution of {hist.attribute}", caption, body,
                  kind="frequency_distribution")
        )
        return self

    def add_grouped_histogram(
        self, histograms: dict[object, Histogram], attribute: str, caption: str = ""
    ) -> "DashboardBuilder":
        """Add an overlaid per-group distribution panel."""
        body = grouped_histogram_chart(histograms, attribute)
        self.dashboard.add(
            Panel(f"{attribute} by group", caption, body, kind="frequency_distribution")
        )
        return self

    def add_bar_chart(
        self, counts: list[tuple[str, int]], attribute: str, caption: str = ""
    ) -> "DashboardBuilder":
        """Add a categorical frequency bar-chart panel."""
        self.dashboard.add(
            Panel(f"Frequency of {attribute}", caption, bar_chart(counts, attribute),
                  kind="frequency_distribution")
        )
        return self

    def add_correlation_matrix(
        self, matrix: CorrelationMatrix, caption: str = ""
    ) -> "DashboardBuilder":
        """Add the gray-scale correlation-matrix panel."""
        self.dashboard.add(
            Panel("Correlation matrix", caption, correlation_matrix_chart(matrix),
                  kind="correlation_matrix")
        )
        return self

    def add_rules_table(
        self, rules: list[AssociationRule], caption: str = "", max_rows: int = 20
    ) -> "DashboardBuilder":
        """Add the tabular association-rules panel."""
        self.dashboard.add(
            Panel("Association rules", caption, rules_table_html(rules, max_rows),
                  kind="rules_table")
        )
        return self

    def add_summary_table(
        self, summaries: dict[str, NumericSummary | CategoricalSummary],
        caption: str = "",
    ) -> "DashboardBuilder":
        """Add the statistical-summary panel."""
        self.dashboard.add(
            Panel("Statistical summary", caption, summary_table_html(summaries),
                  kind="summary_table")
        )
        return self

    def build(self) -> Dashboard:
        """The assembled :class:`Dashboard`."""
        return self.dashboard
