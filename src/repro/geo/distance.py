"""Geographic distance primitives.

INDICE's maps and the multivariate outlier step both need metric distances
between geolocated certificates.  For the city-scale extents involved
(tens of kilometres), two measures are provided:

* :func:`haversine_km` — exact great-circle distance on a spherical Earth;
* :func:`equirectangular_km` — the fast small-area approximation used by
  the spatial grid index and the marker-clustering engine.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "EARTH_RADIUS_KM",
    "haversine_km",
    "haversine_km_vec",
    "equirectangular_km",
    "km_per_degree",
]

#: Mean Earth radius (IUGG), in kilometres.
EARTH_RADIUS_KM = 6371.0088


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in km between two WGS84 points.

    >>> round(haversine_km(45.07, 7.68, 45.07, 7.68), 6)
    0.0
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def haversine_km_vec(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`haversine_km` over aligned coordinate arrays."""
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lon2) - np.asarray(lon1))
    a = np.sin(dphi / 2) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2) ** 2
    return 2 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def equirectangular_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Equirectangular-projection distance in km (fast, accurate over a city)."""
    mean_phi = math.radians((lat1 + lat2) / 2)
    x = math.radians(lon2 - lon1) * math.cos(mean_phi)
    y = math.radians(lat2 - lat1)
    return EARTH_RADIUS_KM * math.hypot(x, y)


def km_per_degree(latitude: float) -> tuple[float, float]:
    """(km per degree of latitude, km per degree of longitude) at *latitude*."""
    per_lat = EARTH_RADIUS_KM * math.pi / 180.0
    per_lon = per_lat * math.cos(math.radians(latitude))
    return per_lat, per_lon
