"""A uniform spatial grid index over geolocated points.

Both the DBSCAN region queries and the cluster-marker aggregation need
"all points within distance eps of p" / "all points in this cell" lookups
that would be quadratic with a naive scan.  This index buckets points into
equal-angle lat/lon cells sized so that a radius query only has to inspect
the 3x3 neighbourhood of the probe cell.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from .distance import equirectangular_km, km_per_degree

__all__ = ["GridIndex"]


class GridIndex:
    """Bucket geolocated points into a uniform lat/lon grid.

    Parameters
    ----------
    latitudes, longitudes:
        Aligned coordinate arrays; NaN coordinates are skipped (they never
        appear in query results).
    cell_km:
        Approximate cell edge length in kilometres.
    """

    def __init__(self, latitudes: np.ndarray, longitudes: np.ndarray, cell_km: float):
        if cell_km <= 0:
            raise ValueError("cell_km must be positive")
        self.latitudes = np.asarray(latitudes, dtype=np.float64)
        self.longitudes = np.asarray(longitudes, dtype=np.float64)
        if self.latitudes.shape != self.longitudes.shape:
            raise ValueError("latitude/longitude arrays must be aligned")
        self.cell_km = float(cell_km)

        valid = ~(np.isnan(self.latitudes) | np.isnan(self.longitudes))
        self._valid = valid
        reference_lat = float(np.mean(self.latitudes[valid])) if valid.any() else 0.0
        per_lat, per_lon = km_per_degree(reference_lat)
        per_lon = max(per_lon, 1e-9)
        self._lat_step = cell_km / per_lat
        self._lon_step = cell_km / per_lon

        self._cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        for i in np.flatnonzero(valid):
            self._cells[self._cell_of(self.latitudes[i], self.longitudes[i])].append(int(i))

    def _cell_of(self, lat: float, lon: float) -> tuple[int, int]:
        return (math.floor(lat / self._lat_step), math.floor(lon / self._lon_step))

    @property
    def n_points(self) -> int:
        """Number of indexed (valid-coordinate) points."""
        return int(self._valid.sum())

    @property
    def n_cells(self) -> int:
        """Number of occupied grid cells."""
        return len(self._cells)

    def cells(self) -> dict[tuple[int, int], list[int]]:
        """Mapping cell -> point indices (a copy, safe to mutate)."""
        return {k: list(v) for k, v in self._cells.items()}

    def cell_center(self, cell: tuple[int, int]) -> tuple[float, float]:
        """(lat, lon) of the geometric centre of *cell*."""
        row, col = cell
        return ((row + 0.5) * self._lat_step, (col + 0.5) * self._lon_step)

    def neighbors_within(self, index: int, radius_km: float) -> list[int]:
        """Indices of points within *radius_km* of point *index* (inclusive
        of the point itself)."""
        lat, lon = float(self.latitudes[index]), float(self.longitudes[index])
        return self.query_radius(lat, lon, radius_km)

    def query_radius(self, lat: float, lon: float, radius_km: float) -> list[int]:
        """Indices of points within *radius_km* of (*lat*, *lon*)."""
        if math.isnan(lat) or math.isnan(lon):
            return []
        reach = max(1, math.ceil(radius_km / self.cell_km))
        row0, col0 = self._cell_of(lat, lon)
        hits: list[int] = []
        for dr in range(-reach, reach + 1):
            for dc in range(-reach, reach + 1):
                for i in self._cells.get((row0 + dr, col0 + dc), ()):
                    d = equirectangular_km(
                        lat, lon, float(self.latitudes[i]), float(self.longitudes[i])
                    )
                    if d <= radius_km:
                        hits.append(i)
        return hits
