"""Minimal GeoJSON emission for INDICE maps.

Dashboards export their geographic layers (region polygons, certificate
points, cluster markers) as GeoJSON FeatureCollections so they can be
inspected with any standard GIS tool.  Only the writer subset INDICE needs
is implemented; coordinates follow the GeoJSON convention (lon, lat).
"""

from __future__ import annotations

import json
from typing import Any

from .regions import Region

__all__ = [
    "point_feature",
    "polygon_feature",
    "region_feature",
    "feature_collection",
    "dumps",
    "loads",
    "points_from_collection",
]


def point_feature(lat: float, lon: float, properties: dict[str, Any] | None = None) -> dict:
    """A GeoJSON Point feature at (*lat*, *lon*)."""
    return {
        "type": "Feature",
        "geometry": {"type": "Point", "coordinates": [float(lon), float(lat)]},
        "properties": dict(properties or {}),
    }


def polygon_feature(
    ring: list[tuple[float, float]], properties: dict[str, Any] | None = None
) -> dict:
    """A GeoJSON Polygon feature from a (lat, lon) ring (closed automatically)."""
    coords = [[float(lon), float(lat)] for lat, lon in ring]
    if coords and coords[0] != coords[-1]:
        coords.append(coords[0])
    return {
        "type": "Feature",
        "geometry": {"type": "Polygon", "coordinates": [coords]},
        "properties": dict(properties or {}),
    }


def region_feature(region: Region, properties: dict[str, Any] | None = None) -> dict:
    """A Polygon feature for an administrative :class:`Region`."""
    props = {"name": region.name, "level": region.level.name.lower()}
    props.update(properties or {})
    return polygon_feature(region.ring, props)


def feature_collection(features: list[dict]) -> dict:
    """Wrap *features* into a FeatureCollection."""
    return {"type": "FeatureCollection", "features": list(features)}


def dumps(collection: dict, indent: int | None = None) -> str:
    """Serialize a GeoJSON object, rejecting NaN coordinates up front."""
    return json.dumps(collection, indent=indent, allow_nan=False)


def loads(text: str) -> dict:
    """Parse a GeoJSON document, validating the top-level shape."""
    obj = json.loads(text)
    if not isinstance(obj, dict) or "type" not in obj:
        raise ValueError("not a GeoJSON object (missing 'type')")
    if obj["type"] == "FeatureCollection" and not isinstance(obj.get("features"), list):
        raise ValueError("FeatureCollection without a 'features' list")
    return obj


def points_from_collection(collection: dict) -> list[tuple[float, float, dict]]:
    """Extract ``(lat, lon, properties)`` for every Point feature.

    Non-point features are skipped — use this to pull certificate markers
    back out of an exported map layer.
    """
    out: list[tuple[float, float, dict]] = []
    for feature in collection.get("features", []):
        geometry = feature.get("geometry") or {}
        if geometry.get("type") != "Point":
            continue
        lon, lat = geometry["coordinates"]
        out.append((float(lat), float(lon), dict(feature.get("properties") or {})))
    return out
