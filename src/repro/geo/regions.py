"""Administrative regions and the spatial granularity hierarchy.

INDICE presents knowledge "at different spatial granularity levels such as
city, district, neighbourhood, or housing unit" (paper, Section 2.3).  This
module models that hierarchy:

* :class:`Granularity` — the four zoom levels, ordered coarse -> fine;
* :class:`Region` — a named polygonal administrative area;
* :class:`RegionHierarchy` — a city split into districts split into
  neighbourhoods, with point -> region assignment.

Polygons are simple (non-self-intersecting) rings of (lat, lon) vertices;
containment uses the even-odd ray-casting rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Granularity", "Region", "RegionHierarchy", "point_in_polygon"]


class Granularity(enum.IntEnum):
    """Spatial zoom levels, ordered from coarse to fine."""

    CITY = 1
    DISTRICT = 2
    NEIGHBOURHOOD = 3
    UNIT = 4

    def finer(self) -> "Granularity":
        """The next level of detail (UNIT stays UNIT)."""
        return Granularity(min(self.value + 1, Granularity.UNIT.value))

    def coarser(self) -> "Granularity":
        """The previous level of detail (CITY stays CITY)."""
        return Granularity(max(self.value - 1, Granularity.CITY.value))


def point_in_polygon(lat: float, lon: float, ring: list[tuple[float, float]]) -> bool:
    """Even-odd ray-casting containment test for a simple polygon *ring*.

    Vertices are (lat, lon) pairs; the ring closes implicitly.  Points on an
    edge may land on either side — acceptable for region assignment where
    synthetic coordinates never sit exactly on boundaries.
    """
    inside = False
    n = len(ring)
    for i in range(n):
        lat1, lon1 = ring[i]
        lat2, lon2 = ring[(i + 1) % n]
        if (lon1 > lon) != (lon2 > lon):
            t = (lon - lon1) / (lon2 - lon1)
            crossing_lat = lat1 + t * (lat2 - lat1)
            if lat < crossing_lat:
                inside = not inside
    return inside


@dataclass
class Region:
    """A named polygonal administrative area.

    ``parent`` is the name of the enclosing region (``None`` for the city).
    """

    name: str
    level: Granularity
    ring: list[tuple[float, float]]
    parent: str | None = None

    def contains(self, lat: float, lon: float) -> bool:
        """True when the point lies inside this region's polygon."""
        return point_in_polygon(lat, lon, self.ring)

    def centroid(self) -> tuple[float, float]:
        """Vertex-average centroid (adequate for the convex synthetic rings)."""
        lats = [p[0] for p in self.ring]
        lons = [p[1] for p in self.ring]
        return (sum(lats) / len(lats), sum(lons) / len(lons))

    def bounding_box(self) -> tuple[float, float, float, float]:
        """(min_lat, min_lon, max_lat, max_lon)."""
        lats = [p[0] for p in self.ring]
        lons = [p[1] for p in self.ring]
        return (min(lats), min(lons), max(lats), max(lons))


@dataclass
class RegionHierarchy:
    """A city with its districts and neighbourhoods.

    Regions at each level must tile the city without overlaps for assignment
    to be unambiguous; the synthetic city generator guarantees this.
    """

    city: Region
    districts: list[Region] = field(default_factory=list)
    neighbourhoods: list[Region] = field(default_factory=list)

    def regions_at(self, level: Granularity) -> list[Region]:
        """All regions at zoom *level* (UNIT has no polygons — empty list)."""
        if level is Granularity.CITY:
            return [self.city]
        if level is Granularity.DISTRICT:
            return list(self.districts)
        if level is Granularity.NEIGHBOURHOOD:
            return list(self.neighbourhoods)
        return []

    def region_of(self, lat: float, lon: float, level: Granularity) -> Region | None:
        """The region at *level* containing the point, or ``None``."""
        for region in self.regions_at(level):
            if region.contains(lat, lon):
                return region
        return None

    def assign(
        self, latitudes: np.ndarray, longitudes: np.ndarray, level: Granularity
    ) -> list[str | None]:
        """Vector assignment of points to region names at *level*.

        NaN coordinates map to ``None``.  Uses each region's bounding box as
        a cheap pre-filter before the exact polygon test.
        """
        regions = self.regions_at(level)
        boxes = [r.bounding_box() for r in regions]
        out: list[str | None] = []
        for lat, lon in zip(np.asarray(latitudes), np.asarray(longitudes)):
            if np.isnan(lat) or np.isnan(lon):
                out.append(None)
                continue
            name = None
            for region, (lo_lat, lo_lon, hi_lat, hi_lon) in zip(regions, boxes):
                if lo_lat <= lat <= hi_lat and lo_lon <= lon <= hi_lon:
                    if region.contains(float(lat), float(lon)):
                        name = region.name
                        break
            out.append(name)
        return out

    def children_of(self, name: str) -> list[Region]:
        """The direct children of region *name* in the hierarchy."""
        if name == self.city.name:
            return list(self.districts)
        return [r for r in self.neighbourhoods if r.parent == name]
