"""Geospatial substrate: distances, grid index, regions, GeoJSON."""

from .distance import (
    EARTH_RADIUS_KM,
    equirectangular_km,
    haversine_km,
    haversine_km_vec,
    km_per_degree,
)
from .grid import GridIndex
from .regions import Granularity, Region, RegionHierarchy, point_in_polygon
from .geojson import (
    dumps,
    feature_collection,
    loads,
    point_feature,
    points_from_collection,
    polygon_feature,
    region_feature,
)

__all__ = [
    "EARTH_RADIUS_KM",
    "equirectangular_km",
    "haversine_km",
    "haversine_km_vec",
    "km_per_degree",
    "GridIndex",
    "Granularity",
    "Region",
    "RegionHierarchy",
    "point_in_polygon",
    "dumps",
    "feature_collection",
    "loads",
    "point_feature",
    "points_from_collection",
    "polygon_feature",
    "region_feature",
]
