"""Noise injection with provenance.

The paper motivates the whole preprocessing tier with the observation that
address fields "often contain numerous typos and input errors" and that
numeric attributes carry outliers from collection errors (Section 2.1).
Real EPC collections come pre-dirtied; our synthetic one is born clean, so
this module corrupts it the way certifier-typed data gets corrupted — and,
unlike reality, remembers *exactly* what it did.

Every corruption is logged as a :class:`NoiseEvent` carrying the row, the
attribute, the noise kind and the original value.  Experiments E2/A1 use the
log to score cleaning precision and recall; experiment E9 uses the planted
numeric outliers to score the detector battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .synthetic import EpcCollection
from .table import Column, ColumnKind, Table

__all__ = ["NoiseConfig", "NoiseEvent", "NoiseResult", "apply_noise"]

#: Reverse abbreviations used to re-compress canonical odonyms.
_REABBREVIATE = {
    "corso": "c.so",
    "via": "v.",
    "viale": "v.le",
    "piazza": "p.za",
    "largo": "l.go",
    "strada": "str.",
    "vicolo": "vic.",
}

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class NoiseConfig:
    """Corruption probabilities, per row (addresses) or per cell (numerics)."""

    seed: int = 77
    # address-field noise
    p_address_typo: float = 0.18
    p_address_abbreviation: float = 0.10
    p_address_case: float = 0.08
    p_house_number_missing: float = 0.03
    p_zip_missing: float = 0.06
    p_zip_wrong: float = 0.04
    p_coords_missing: float = 0.05
    p_coords_swapped: float = 0.01
    p_coords_gross_error: float = 0.02
    # numeric noise on the analysis attributes
    p_numeric_outlier: float = 0.008
    p_numeric_missing: float = 0.012
    #: Numeric attributes subject to outlier/missing injection.
    numeric_targets: tuple[str, ...] = (
        "aspect_ratio",
        "u_value_opaque",
        "u_value_windows",
        "heated_surface",
        "eta_h",
        "eph",
    )
    #: Distribution of edit counts for a typo event: (edits, probability).
    typo_edit_distribution: tuple[tuple[int, float], ...] = (
        (1, 0.60), (2, 0.25), (3, 0.10), (5, 0.05),
    )


@dataclass(frozen=True)
class NoiseEvent:
    """One logged corruption: what happened to which cell."""

    row: int
    attribute: str
    kind: str
    original: object
    corrupted: object


@dataclass
class NoiseResult:
    """The dirty table plus the full corruption log."""

    table: Table
    events: list[NoiseEvent] = field(default_factory=list)

    def events_by_kind(self) -> dict[str, list[NoiseEvent]]:
        """The noise events grouped by their kind."""
        by_kind: dict[str, list[NoiseEvent]] = {}
        for ev in self.events:
            by_kind.setdefault(ev.kind, []).append(ev)
        return by_kind

    def rows_touched(self, attribute: str | None = None) -> set[int]:
        """Rows that received at least one event (optionally on *attribute*)."""
        return {
            ev.row
            for ev in self.events
            if attribute is None or ev.attribute == attribute
        }


def _apply_typos(rng: np.random.Generator, text: str, n_edits: int) -> str:
    """Apply *n_edits* random single-character edits to *text*."""
    chars = list(text)
    for _ in range(n_edits):
        if not chars:
            chars = [rng.choice(list(_ALPHABET))]
            continue
        op = rng.integers(0, 4)
        pos = int(rng.integers(0, len(chars)))
        if op == 0:  # substitution
            chars[pos] = str(rng.choice(list(_ALPHABET)))
        elif op == 1:  # deletion
            del chars[pos]
        elif op == 2:  # insertion
            chars.insert(pos, str(rng.choice(list(_ALPHABET))))
        elif op == 3 and len(chars) >= 2:  # transposition
            pos = min(pos, len(chars) - 2)
            chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
    return "".join(chars)


def _reabbreviate(address: str) -> str:
    """Compress canonical odonym tokens back into common abbreviations."""
    tokens = address.split()
    return " ".join(_REABBREVIATE.get(tok, tok) for tok in tokens)


def _sample_edits(rng: np.random.Generator, dist: tuple[tuple[int, float], ...]) -> int:
    counts = [c for c, _ in dist]
    probs = np.array([p for _, p in dist], dtype=np.float64)
    return int(rng.choice(counts, p=probs / probs.sum()))


def apply_noise(
    collection: EpcCollection, config: NoiseConfig | None = None
) -> NoiseResult:
    """Corrupt a clean collection, returning the dirty table and the log.

    The input collection is left untouched; the returned table owns fresh
    column buffers for every attribute the noise model can touch.
    """
    cfg = config or NoiseConfig()
    rng = np.random.default_rng(cfg.seed)
    table = collection.table
    n = table.n_rows
    events: list[NoiseEvent] = []

    address = np.array(table["address"], dtype=object)
    house_number = np.array(table["house_number"], dtype=object)
    zip_code = np.array(table["zip_code"], dtype=object)
    lat = table["latitude"].copy()
    lon = table["longitude"].copy()

    all_zips = sorted({z for z in zip_code if z is not None})

    def log(row: int, attribute: str, kind: str, original, corrupted) -> None:
        events.append(NoiseEvent(int(row), attribute, kind, original, corrupted))

    u = rng.random((n, 8))
    for i in range(n):
        # -- address text -------------------------------------------------
        if address[i] is not None:
            if u[i, 0] < cfg.p_address_typo:
                edits = _sample_edits(rng, cfg.typo_edit_distribution)
                corrupted = _apply_typos(rng, address[i], edits)
                if corrupted != address[i]:
                    log(i, "address", "typo", address[i], corrupted)
                    address[i] = corrupted
            if u[i, 1] < cfg.p_address_abbreviation:
                corrupted = _reabbreviate(address[i])
                if corrupted != address[i]:
                    log(i, "address", "abbreviation", address[i], corrupted)
                    address[i] = corrupted
            if u[i, 2] < cfg.p_address_case:
                corrupted = address[i].upper()
                if corrupted != address[i]:
                    log(i, "address", "case", address[i], corrupted)
                    address[i] = corrupted
        # -- house number --------------------------------------------------
        if u[i, 3] < cfg.p_house_number_missing and house_number[i] is not None:
            log(i, "house_number", "missing", house_number[i], None)
            house_number[i] = None
        # -- zip ------------------------------------------------------------
        if u[i, 4] < cfg.p_zip_missing and zip_code[i] is not None:
            log(i, "zip_code", "missing", zip_code[i], None)
            zip_code[i] = None
        elif u[i, 5] < cfg.p_zip_wrong and zip_code[i] is not None:
            wrong = str(rng.choice(all_zips))
            if wrong != zip_code[i]:
                log(i, "zip_code", "wrong", zip_code[i], wrong)
                zip_code[i] = wrong
        # -- coordinates -----------------------------------------------------
        if u[i, 6] < cfg.p_coords_missing:
            if not (np.isnan(lat[i]) and np.isnan(lon[i])):
                log(i, "latitude", "missing", float(lat[i]), None)
                log(i, "longitude", "missing", float(lon[i]), None)
                lat[i] = np.nan
                lon[i] = np.nan
        elif u[i, 7] < cfg.p_coords_swapped:
            log(i, "latitude", "swapped", float(lat[i]), float(lon[i]))
            log(i, "longitude", "swapped", float(lon[i]), float(lat[i]))
            lat[i], lon[i] = lon[i], lat[i]
        elif u[i, 7] < cfg.p_coords_swapped + cfg.p_coords_gross_error:
            new_lat = float(rng.uniform(36.0, 47.0))
            new_lon = float(rng.uniform(7.0, 18.0))
            log(i, "latitude", "gross_error", float(lat[i]), new_lat)
            log(i, "longitude", "gross_error", float(lon[i]), new_lon)
            lat[i], lon[i] = new_lat, new_lon

    # -- numeric outliers and missing values --------------------------------
    numeric_arrays: dict[str, np.ndarray] = {}
    for name in cfg.numeric_targets:
        values = table[name].copy()
        outlier_mask = rng.random(n) < cfg.p_numeric_outlier
        missing_mask = (~outlier_mask) & (rng.random(n) < cfg.p_numeric_missing)
        for i in np.flatnonzero(outlier_mask):
            original = float(values[i])
            # unit errors and decimal slips: x10, x100 or /10
            factor = float(rng.choice((10.0, 100.0, 0.1), p=(0.6, 0.2, 0.2)))
            corrupted = original * factor
            log(i, name, "outlier", original, corrupted)
            values[i] = corrupted
        for i in np.flatnonzero(missing_mask):
            log(i, name, "missing", float(values[i]), None)
            values[i] = np.nan
        numeric_arrays[name] = values

    dirty = table
    dirty = dirty.with_column(Column("address", ColumnKind.TEXT, address))
    dirty = dirty.with_column(Column("house_number", ColumnKind.TEXT, house_number))
    dirty = dirty.with_column(Column("zip_code", ColumnKind.CATEGORICAL, zip_code))
    dirty = dirty.with_column(Column("latitude", ColumnKind.NUMERIC, lat))
    dirty = dirty.with_column(Column("longitude", ColumnKind.NUMERIC, lon))
    for name, values in numeric_arrays.items():
        dirty = dirty.with_column(Column(name, ColumnKind.NUMERIC, values))
    # restore original schema column order
    dirty = dirty.select(table.column_names)
    return NoiseResult(table=dirty, events=events)
