"""The Energy Performance Certificate attribute schema.

The Piedmont EPC open dataset analyzed in the paper has **132 attributes per
certificate: 89 categorical and 43 quantitative** (paper, Section 3).  This
module declares an equivalent schema: every attribute the paper names is
present under a stable identifier, and the remaining attributes model the
administrative, envelope, plant and compliance fields that real Italian EPCs
(APE — *Attestato di Prestazione Energetica*) carry.

The named paper attributes and their schema identifiers:

===========================================  =====================
Paper name                                   Schema name
===========================================  =====================
Aspect Ratio (S/V)                           ``aspect_ratio``
Average U-value of vertical opaque envelope  ``u_value_opaque``
Average U-value of the windows               ``u_value_windows``
Heat surface (S_r)                           ``heated_surface``
Average global efficiency for space heating  ``eta_h``
Normalized primary heating energy (EP_H)     ``eph``
===========================================  =====================

Use :func:`epc_schema` to obtain the full schema and
:data:`PAPER_CLUSTERING_FEATURES` / :data:`PAPER_RESPONSE` for the case-study
feature set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .table import ColumnKind

__all__ = [
    "AttributeSpec",
    "EpcSchema",
    "epc_schema",
    "PAPER_CLUSTERING_FEATURES",
    "PAPER_RESPONSE",
    "GEO_ATTRIBUTES",
    "ENERGY_CLASSES",
    "BUILDING_TYPES",
]

#: The five thermo-physical features the case study clusters on (Section 3.1).
PAPER_CLUSTERING_FEATURES = (
    "aspect_ratio",
    "u_value_opaque",
    "u_value_windows",
    "heated_surface",
    "eta_h",
)

#: The response variable used for discretization and cluster coloring.
PAPER_RESPONSE = "eph"

#: Attributes involved in geospatial cleaning (Section 2.1.1).
GEO_ATTRIBUTES = ("address", "house_number", "zip_code", "latitude", "longitude")

#: Italian EPC energy classes (best to worst).
ENERGY_CLASSES = ("A4", "A3", "A2", "A1", "B", "C", "D", "E", "F", "G")

#: Italian cadastral building-use codes (DPR 412/93); E.1.1 = permanent residence.
BUILDING_TYPES = ("E.1.1", "E.1.2", "E.1.3", "E.2", "E.3", "E.4", "E.5", "E.6", "E.7", "E.8")

_YES_NO = ("yes", "no")
_QUALITY = ("good", "fair", "poor")
_PRESENT_ABSENT = ("present", "absent")


@dataclass(frozen=True)
class AttributeSpec:
    """Metadata for a single EPC attribute.

    ``lo``/``hi`` bound plausible values for numeric attributes (used by the
    synthetic generator and by validation); ``categories`` is the closed
    vocabulary for categorical attributes.
    """

    name: str
    kind: ColumnKind
    description: str
    unit: str = ""
    lo: float | None = None
    hi: float | None = None
    categories: tuple[str, ...] = field(default_factory=tuple)

    def validate_value(self, value) -> bool:
        """True when *value* is missing or plausible for this attribute."""
        if value is None:
            return True
        if self.kind is ColumnKind.NUMERIC:
            try:
                v = float(value)
            except (TypeError, ValueError):
                return False
            if v != v:  # NaN counts as missing
                return True
            if self.lo is not None and v < self.lo:
                return False
            if self.hi is not None and v > self.hi:
                return False
            return True
        if self.kind is ColumnKind.CATEGORICAL and self.categories:
            return str(value) in self.categories
        return isinstance(value, str)


def _num(name: str, description: str, unit: str, lo: float, hi: float) -> AttributeSpec:
    return AttributeSpec(name, ColumnKind.NUMERIC, description, unit, lo, hi)


def _cat(name: str, description: str, categories: tuple[str, ...]) -> AttributeSpec:
    return AttributeSpec(name, ColumnKind.CATEGORICAL, description, categories=categories)


def _txt(name: str, description: str) -> AttributeSpec:
    return AttributeSpec(name, ColumnKind.TEXT, description)


def _quantitative_attributes() -> list[AttributeSpec]:
    """The 43 quantitative attributes."""
    return [
        # -- paper-named thermo-physical features --
        _num("aspect_ratio", "Aspect ratio S/V of the building", "1/m", 0.1, 1.5),
        _num("u_value_opaque", "Average U-value of the vertical opaque envelope", "W/m2K", 0.1, 2.5),
        _num("u_value_windows", "Average U-value of the windows", "W/m2K", 0.8, 6.5),
        _num("heated_surface", "Heated (useful) floor area S_r", "m2", 15.0, 2500.0),
        _num("eta_h", "Average global efficiency for space heating (ETAH)", "", 0.1, 1.1),
        _num("eph", "Normalized primary energy demand for heating (EP_H)", "kWh/m2y", 5.0, 700.0),
        # -- geolocation --
        _num("latitude", "WGS84 latitude of the housing unit", "deg", 35.0, 48.5),
        _num("longitude", "WGS84 longitude of the housing unit", "deg", 5.0, 20.0),
        # -- geometry --
        _num("heated_volume", "Gross heated volume", "m3", 40.0, 12000.0),
        _num("dispersing_surface", "Total dispersing surface", "m2", 8.0, 9000.0),
        _num("opaque_surface", "Vertical opaque envelope surface", "m2", 3.0, 6000.0),
        _num("glazed_surface", "Glazed (window) surface", "m2", 0.2, 900.0),
        _num("window_to_wall_ratio", "Glazed over opaque vertical surface", "", 0.01, 0.9),
        _num("net_floor_area", "Net walkable floor area", "m2", 12.0, 2300.0),
        _num("average_height", "Average internal ceiling height", "m", 2.2, 5.0),
        _num("floors", "Number of floors of the unit", "", 1, 4),
        _num("building_floors", "Number of floors of the whole building", "", 1, 12),
        _num("apartment_units", "Number of housing units in the building", "", 1, 120),
        # -- envelope physics --
        _num("roof_u_value", "Average U-value of the roof", "W/m2K", 0.1, 3.0),
        _num("floor_u_value", "Average U-value of the lower floor slab", "W/m2K", 0.1, 3.0),
        _num("wall_thickness", "Average external wall thickness", "cm", 15.0, 80.0),
        _num("thermal_capacity", "Areal thermal capacity of the envelope", "kJ/m2K", 50.0, 500.0),
        _num("solar_factor_windows", "Solar factor g of the glazing", "", 0.2, 0.9),
        # -- plant efficiencies --
        _num("eta_generation", "Generation subsystem efficiency", "", 0.3, 1.2),
        _num("eta_distribution", "Distribution subsystem efficiency", "", 0.5, 1.0),
        _num("eta_emission", "Emission subsystem efficiency", "", 0.5, 1.0),
        _num("eta_control", "Control subsystem efficiency", "", 0.5, 1.0),
        _num("heating_power", "Nominal heating generator power", "kW", 3.0, 600.0),
        _num("dhw_power", "Domestic hot water generator power", "kW", 0.0, 120.0),
        # -- energy indicators --
        _num("ep_w", "Primary energy demand for hot water", "kWh/m2y", 2.0, 90.0),
        _num("ep_c", "Primary energy demand for cooling", "kWh/m2y", 0.0, 80.0),
        _num("ep_gl", "Global primary energy demand EP_gl", "kWh/m2y", 10.0, 800.0),
        _num("co2_emissions", "CO2 emissions per unit area", "kgCO2/m2y", 1.0, 180.0),
        _num("renewable_share", "Share of energy from renewables", "%", 0.0, 100.0),
        _num("electric_consumption", "Annual electric consumption", "kWh/y", 100.0, 30000.0),
        _num("gas_consumption", "Annual gas consumption", "Sm3/y", 0.0, 12000.0),
        # -- climate and context --
        _num("degree_days", "Heating degree days of the site", "degC d", 1000.0, 5000.0),
        _num("altitude", "Altitude of the site", "m", 0.0, 2500.0),
        _num("heating_hours", "Allowed daily heating hours", "h", 6.0, 24.0),
        _num("occupants", "Conventional number of occupants", "", 1, 12),
        # -- temporal --
        _num("year_of_construction", "Year the building was built", "y", 1850, 2018),
        _num("certificate_year", "Year the EPC was issued", "y", 2016, 2018),
        _num("renovation_year", "Year of the last major renovation", "y", 1900, 2018),
    ]


def _categorical_attributes() -> list[AttributeSpec]:
    """The 89 categorical / textual attributes."""
    construction_periods = (
        "before 1918", "1919-1945", "1946-1960", "1961-1975",
        "1976-1990", "1991-2005", "after 2005",
    )
    fuels = ("natural gas", "oil", "LPG", "biomass", "district heating", "electricity")
    exposures = ("N", "NE", "E", "SE", "S", "SW", "W", "NW")
    return [
        # -- identity and location (textual fields counted among the 89) --
        _txt("certificate_id", "Unique certificate identifier"),
        _txt("address", "Street address as typed by the certifier (free text)"),
        _txt("house_number", "House (civic) number as typed"),
        _cat("zip_code", "Postal code (CAP)", ()),
        _cat("city", "Municipality name", ()),
        _cat("province", "Province code", ("TO", "CN", "AL", "AT", "BI", "NO", "VB", "VC")),
        _cat("region", "Region name", ("Piedmont",)),
        _cat("district", "Administrative district within the city", ()),
        _cat("neighbourhood", "Statistical neighbourhood within the district", ()),
        _txt("cadastral_parcel", "Cadastral sheet/parcel identifier"),
        _txt("building_id", "Identifier shared by units of the same building"),
        # -- classification --
        _cat("energy_class", "EPC energy class label", ENERGY_CLASSES),
        _cat("building_type", "Cadastral use destination (DPR 412/93)", BUILDING_TYPES),
        _cat("construction_period", "Construction period class", construction_periods),
        _cat("building_category", "Building category", ("apartment block", "detached house", "terraced house", "multi-storey", "other")),
        _cat("unit_position", "Position of the unit in the building", ("ground floor", "intermediate floor", "top floor", "whole building")),
        _cat("certificate_reason", "Why the EPC was issued", ("sale", "rental", "new construction", "renovation", "energy requalification", "other")),
        _cat("certification_software", "Software used by the certifier", ("CENED", "DOCET", "TerMus", "MC4", "EC700", "other")),
        _txt("certifier_id", "Registration code of the certifier"),
        # -- envelope descriptors --
        _cat("wall_type", "Prevailing external wall technology", ("solid brick", "hollow brick", "concrete", "stone", "wood", "mixed")),
        _cat("wall_insulation", "External wall insulation", ("none", "partial", "full", "external coat")),
        _cat("roof_type", "Roof construction type", ("pitched tiles", "flat slab", "wooden pitched", "metal", "green roof")),
        _cat("roof_insulation", "Roof insulation state", ("none", "partial", "full")),
        _cat("floor_type", "Lower slab type", ("on ground", "on cellar", "on pilotis", "on unheated room")),
        _cat("window_frame", "Prevailing window frame material", ("wood", "aluminium", "PVC", "aluminium thermal break", "steel")),
        _cat("glazing_type", "Prevailing glazing", ("single", "double", "double low-e", "triple")),
        _cat("shutters", "External shading/shutter presence", _PRESENT_ABSENT),
        _cat("prevailing_exposure", "Prevailing facade exposure", exposures),
        _cat("envelope_state", "Conservation state of the envelope", _QUALITY),
        _cat("thermal_bridges_corrected", "Thermal bridges corrected", _YES_NO),
        # -- heating plant --
        _cat("heating_fuel", "Primary space-heating fuel", fuels),
        _cat("heating_type", "Heating plant configuration", ("autonomous", "centralized", "district", "heat pump", "stove")),
        _cat("generator_type", "Heat generator technology", ("standard boiler", "condensing boiler", "heat pump", "biomass boiler", "district exchanger", "electric")),
        _cat("emitter_type", "Heat emitter type", ("radiators", "fan coils", "radiant floor", "air ducts", "stoves")),
        _cat("distribution_type", "Distribution network type", ("vertical columns", "horizontal ring", "autonomous ring", "none")),
        _cat("regulation_type", "Heating control strategy", ("none", "climatic", "zone thermostat", "thermostatic valves", "climatic+valves")),
        _cat("heat_metering", "Individual heat metering installed", _YES_NO),
        _cat("chimney_type", "Flue/chimney configuration", ("individual", "collective", "wall vented", "none")),
        # -- hot water --
        _cat("dhw_fuel", "Domestic hot water fuel", fuels),
        _cat("dhw_generator", "DHW generator type", ("combined with heating", "dedicated boiler", "electric heater", "heat pump", "solar assisted")),
        _cat("dhw_storage", "DHW storage tank present", _PRESENT_ABSENT),
        # -- cooling and ventilation --
        _cat("cooling_system", "Space cooling system", ("none", "split units", "centralized", "heat pump reversible")),
        _cat("ventilation_type", "Ventilation strategy", ("natural", "mechanical extract", "balanced mechanical", "heat recovery")),
        _cat("humidity_control", "Humidity control present", _YES_NO),
        # -- renewables --
        _cat("solar_thermal", "Solar thermal panels", _PRESENT_ABSENT),
        _cat("photovoltaic", "Photovoltaic panels", _PRESENT_ABSENT),
        _cat("other_renewables", "Other renewable sources", ("none", "geothermal", "biomass", "micro wind", "mixed")),
        # -- administrative / compliance flags (real APE carries dozens) --
        _cat("new_building", "Certificate for a new building", _YES_NO),
        _cat("major_renovation", "Major renovation performed", _YES_NO),
        _cat("public_building", "Publicly owned building", _YES_NO),
        _cat("historic_constraint", "Under cultural-heritage constraint", _YES_NO),
        _cat("occupied_at_inspection", "Unit occupied at inspection time", _YES_NO),
        _cat("inspection_performed", "On-site inspection performed", _YES_NO),
        _cat("project_data_used", "Design-project data used for inputs", _YES_NO),
        _cat("energy_audit_attached", "Energy audit attached", _YES_NO),
        _cat("improvement_recommended", "Improvement measures recommended", _YES_NO),
        _cat("recommended_envelope_work", "Envelope works recommended", _YES_NO),
        _cat("recommended_plant_work", "Plant works recommended", _YES_NO),
        _cat("recommended_renewables", "Renewable installation recommended", _YES_NO),
        _cat("class_after_works", "Energy class reachable after works", ENERGY_CLASSES),
        _cat("nzeb", "Nearly-zero-energy building", _YES_NO),
        _cat("summer_envelope_quality", "Summer envelope performance class", _QUALITY),
        _cat("winter_envelope_quality", "Winter envelope performance class", _QUALITY),
        _cat("adjacent_heated_units", "Adjacency to other heated units", ("none", "one side", "two sides", "three or more")),
        _cat("basement_present", "Basement or cellar present", _YES_NO),
        _cat("attic_present", "Attic present", _YES_NO),
        _cat("attic_heated", "Attic heated", _YES_NO),
        _cat("garage_present", "Garage annexed to the unit", _YES_NO),
        _cat("lift_present", "Lift in the building", _YES_NO),
        _cat("gas_connection", "Connected to the gas grid", _YES_NO),
        _cat("district_heating_available", "District heating available in the street", _YES_NO),
        _cat("smart_thermostat", "Smart thermostat installed", _YES_NO),
        _cat("condensing_ready_flue", "Flue compatible with condensing boiler", _YES_NO),
        _cat("window_replacement_done", "Windows already replaced", _YES_NO),
        _cat("facade_renovated", "Facade renovated in the last 10 years", _YES_NO),
        _cat("roof_renovated", "Roof renovated in the last 10 years", _YES_NO),
        _cat("plant_renovated", "Heating plant renovated in the last 10 years", _YES_NO),
        _cat("anti_legionella", "Anti-legionella DHW treatment", _YES_NO),
        _cat("water_saving_devices", "Water-saving devices installed", _YES_NO),
        _cat("led_lighting", "Prevailing LED lighting (common areas)", _YES_NO),
        _cat("building_automation", "Building-automation class (EN 15232)", ("A", "B", "C", "D")),
        _cat("epc_validity", "Certificate validity state", ("valid", "expired", "replaced")),
        _cat("data_source", "How the certificate was filed", ("online portal", "certified email", "paper", "bulk import")),
        _cat("quality_check_passed", "Regional automatic quality check outcome", ("passed", "warning", "failed")),
        _cat("subsidized", "Built under subsidized housing schemes", _YES_NO),
        _cat("rented", "Unit currently rented", _YES_NO),
        _cat("owner_occupied", "Unit occupied by the owner", _YES_NO),
        _cat("climatic_zone", "Italian climatic zone of the site", ("C", "D", "E", "F")),
        _cat("urban_context", "Urban context of the building", ("historic centre", "dense urban", "suburban", "rural")),
    ]


class EpcSchema:
    """The full 132-attribute EPC schema with lookup helpers."""

    def __init__(self, attributes: list[AttributeSpec]):
        self._attributes = list(attributes)
        self._by_name = {a.name: a for a in self._attributes}
        if len(self._by_name) != len(self._attributes):
            raise ValueError("duplicate attribute names in schema")

    @property
    def attributes(self) -> list[AttributeSpec]:
        """The attributes referenced anywhere in the rule."""
        return list(self._attributes)

    @property
    def names(self) -> list[str]:
        """Attribute names in schema order."""
        return [a.name for a in self._attributes]

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def spec(self, name: str) -> AttributeSpec:
        """The :class:`AttributeSpec` named *name*."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown EPC attribute {name!r}") from None

    def kinds(self) -> dict[str, ColumnKind]:
        """``{name: kind}`` for :meth:`Table.from_rows`."""
        return {a.name: a.kind for a in self._attributes}

    def quantitative_names(self) -> list[str]:
        """Names of the numeric attributes, in schema order."""
        return [a.name for a in self._attributes if a.kind is ColumnKind.NUMERIC]

    def categorical_names(self) -> list[str]:
        """Names of non-quantitative attributes (categorical + text), the
        bucket the paper counts as its '89 categorical attributes'."""
        return [a.name for a in self._attributes if a.kind is not ColumnKind.NUMERIC]


def epc_schema() -> EpcSchema:
    """Build the canonical 132-attribute schema (43 quantitative + 89 categorical)."""
    return EpcSchema(_quantitative_attributes() + _categorical_attributes())
