"""Synthetic Piedmont EPC collection generator.

The paper evaluates INDICE on ~25,000 certificates (132 attributes) issued
2016-2018 for Piedmont buildings, openly released by CSI Piemonte.  That
collection cannot be fetched offline, so this module generates a seeded
synthetic stand-in whose *statistical shape* matches what the INDICE
pipeline actually depends on:

* certificates are geolocated housing units on real gazetteer addresses
  (Turin units reference the synthetic street map; other Piedmont towns are
  generated without gazetteer backing, like the paper's out-of-case-study
  certificates);
* thermo-physical attributes follow **construction-era regimes** — the
  physical levels (U-values, plant efficiencies) are taken from the Italian
  building-stock literature and line up with the discretization bins the
  paper publishes in footnote 4;
* independent **renovation events** (window replacement, wall insulation,
  plant renewal) decouple the envelope variables from one another, which is
  what keeps the pairwise Pearson correlations weak in Figure 3 while the
  stock stays clusterable;
* the heating demand ``eph`` follows a simplified steady-state balance
  (losses scaled by S/V and envelope U-values, divided by the global plant
  efficiency), so clusters found on the five case-study features order the
  response exactly as the paper's dashboard shows.

Era membership per building is kept as ground truth, which lets the test
suite and benchmarks check recovery properties the paper could only assert
qualitatively.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..geo.regions import RegionHierarchy
from .schema import EpcSchema, epc_schema
from .streetmap import AddressRecord, StreetMap, generate_street_map
from .table import Column, ColumnKind, Table

__all__ = [
    "SyntheticConfig",
    "EraRegime",
    "ERA_REGIMES",
    "EpcCollection",
    "ShardRecipe",
    "generate_epc_collection",
    "generate_epc_shard",
    "merge_epc_collections",
    "plan_generation_shards",
    "shard_seed_sequence",
]


@dataclass(frozen=True)
class EraRegime:
    """Thermo-physical regime of a construction era.

    Means/standard deviations for the envelope and plant variables, the
    construction-year range, and the probability that each subsystem has
    since been renovated (renovated subsystems re-draw from the *recent*
    regime, slightly degraded).
    """

    name: str
    year_range: tuple[int, int]
    u_opaque: tuple[float, float]
    u_windows: tuple[float, float]
    eta_h: tuple[float, float]
    p_window_replacement: float
    p_wall_retrofit: float
    p_plant_renewal: float


#: Construction-era regimes for the Piedmont stock, ordered old -> new.  The
#: physical levels are chosen so that the midpoints between adjacent regimes
#: fall near the paper's footnote-4 discretization boundaries.
ERA_REGIMES = (
    EraRegime("historic", (1880, 1945), (0.95, 0.10), (4.30, 0.45), (0.55, 0.05), 0.55, 0.18, 0.60),
    EraRegime("postwar", (1946, 1975), (0.78, 0.09), (2.90, 0.28), (0.68, 0.05), 0.50, 0.15, 0.55),
    EraRegime("energylaw", (1976, 1990), (0.55, 0.06), (2.25, 0.16), (0.73, 0.04), 0.40, 0.12, 0.45),
    EraRegime("modern", (1991, 2005), (0.42, 0.05), (1.80, 0.18), (0.86, 0.04), 0.25, 0.08, 0.30),
    EraRegime("recent", (2006, 2017), (0.28, 0.05), (1.55, 0.18), (0.93, 0.03), 0.00, 0.00, 0.00),
)

_ERA_INDEX = {regime.name: i for i, regime in enumerate(ERA_REGIMES)}

#: Values a renovated subsystem is re-drawn from (near-recent performance).
#: Kept close to the modern-era modes so renovation does not open a density
#: gap below the paper's lowest discretization boundary.
_RENOVATED_U_WINDOWS = (1.75, 0.22)
_RENOVATED_U_OPAQUE = (0.40, 0.07)
_RENOVATED_ETA_H = (0.89, 0.04)

#: Era mix in the historic city core (old stock dominates) ...
_CORE_ERA_MIX = np.array((0.48, 0.30, 0.12, 0.07, 0.03))
#: ... and at the urban fringe (postwar expansion and newer).
_PERIPHERY_ERA_MIX = np.array((0.05, 0.32, 0.27, 0.20, 0.16))
#: Era mix for certificates outside the case-study city.
_DEFAULT_ERA_MIX = np.array((0.18, 0.34, 0.22, 0.15, 0.11))

#: Other Piedmont municipalities: name, province, (lat, lon), degree days.
_OTHER_CITIES = (
    ("Moncalieri", "TO", (45.0009, 7.6853), 2648),
    ("Rivoli", "TO", (45.0713, 7.5194), 2711),
    ("Collegno", "TO", (45.0780, 7.5750), 2683),
    ("Cuneo", "CN", (44.3845, 7.5427), 3012),
    ("Asti", "AT", (44.9007, 8.2064), 2617),
    ("Alessandria", "AL", (44.9133, 8.6155), 2559),
    ("Novara", "NO", (45.4469, 8.6218), 2463),
    ("Vercelli", "VC", (45.3205, 8.4185), 2543),
    ("Biella", "BI", (45.5628, 8.0583), 2589),
    ("Verbania", "VB", (45.9214, 8.5513), 2427),
)

_TURIN_DEGREE_DAYS = 2617.0


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic collection.

    The defaults reproduce the paper's dataset statistics: ~25k certificates
    with ~70% in the case-study city and ~62% of residential type E.1.1.
    """

    n_certificates: int = 25000
    seed: int = 2322
    turin_share: float = 0.70
    e11_share: float = 0.62
    streets_per_neighbourhood: int = 42


@dataclass
class EpcCollection:
    """A generated EPC collection plus its ground truth.

    ``table`` holds the *clean* certificates (noise is applied separately by
    :mod:`repro.dataset.noise` so experiments can measure recovery).
    ``gazetteer_index`` maps each row to its true street-map record (``-1``
    for certificates outside Turin), and ``era_labels`` carries the true
    construction-era segment of each row.
    """

    table: Table
    schema: EpcSchema
    street_map: StreetMap
    hierarchy: RegionHierarchy
    era_labels: list[str] = field(default_factory=list)
    gazetteer_index: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))

    @property
    def n_certificates(self) -> int:
        """Number of certificates in the collection."""
        return self.table.n_rows


def _truncated_normal(
    rng: np.random.Generator, mean: float, sd: float, lo: float, hi: float, size: int
) -> np.ndarray:
    """Normal draws clipped into [lo, hi] (adequate tails for regime draws)."""
    return np.clip(rng.normal(mean, sd, size), lo, hi)


def _era_for_rows(
    rng: np.random.Generator,
    latitudes: np.ndarray,
    longitudes: np.ndarray,
    in_city: np.ndarray,
) -> np.ndarray:
    """Era index per row, mixed by distance from the city centre.

    Like real Turin, the synthetic stock ages toward the core: the era mix
    interpolates from :data:`_CORE_ERA_MIX` at the centre to
    :data:`_PERIPHERY_ERA_MIX` at the fringe.  This is what makes the
    choropleth maps spatially structured (positive Moran's I) — the
    premise of the paper's energy maps.  Non-city rows use the regional
    default mix.
    """
    from .streetmap import CITY_CENTER, CITY_HALF_LAT, CITY_HALF_LON

    n = len(latitudes)
    out = np.empty(n, dtype=np.intp)
    c_lat, c_lon = CITY_CENTER
    # normalized radial distance in the city's own aspect ratio
    d = np.sqrt(
        ((latitudes - c_lat) / CITY_HALF_LAT) ** 2
        + ((longitudes - c_lon) / CITY_HALF_LON) ** 2
    )
    t = np.clip(d / np.sqrt(2.0), 0.0, 1.0)[:, None]
    mixes = np.where(
        np.asarray(in_city, dtype=bool)[:, None],
        _CORE_ERA_MIX[None, :] * (1.0 - t) + _PERIPHERY_ERA_MIX[None, :] * t,
        _DEFAULT_ERA_MIX[None, :],
    )
    mixes /= mixes.sum(axis=1, keepdims=True)
    # inverse-CDF sampling, one uniform per row
    cumulative = np.cumsum(mixes, axis=1)
    u = rng.random(n)
    out = (cumulative < u[:, None]).sum(axis=1).astype(np.intp)
    return np.minimum(out, len(ERA_REGIMES) - 1)


def _regime_draw(
    rng: np.random.Generator,
    era_idx: np.ndarray,
    attribute: str,
    renovated: np.ndarray,
    renovated_params: tuple[float, float],
    lo: float,
    hi: float,
) -> np.ndarray:
    """Draw a per-row value from each row's era regime, overriding renovated
    rows with the near-recent *renovated_params* regime."""
    n = len(era_idx)
    out = np.empty(n, dtype=np.float64)
    for i, regime in enumerate(ERA_REGIMES):
        rows = np.flatnonzero(era_idx == i)
        if len(rows) == 0:
            continue
        mean, sd = getattr(regime, attribute)
        out[rows] = _truncated_normal(rng, mean, sd, lo, hi, len(rows))
    ren_rows = np.flatnonzero(renovated)
    if len(ren_rows):
        mean, sd = renovated_params
        out[ren_rows] = _truncated_normal(rng, mean, sd, lo, hi, len(ren_rows))
    return out


def _renovation_mask(rng: np.random.Generator, era_idx: np.ndarray, field_name: str) -> np.ndarray:
    """Bernoulli renovation mask with per-era probability *field_name*."""
    probs = np.array([getattr(r, field_name) for r in ERA_REGIMES])
    return rng.random(len(era_idx)) < probs[era_idx]


def _energy_class(ep_gl: np.ndarray) -> list[str]:
    """Energy-class label from the global primary energy indicator."""
    bounds = [
        (20.0, "A4"), (30.0, "A3"), (40.0, "A2"), (55.0, "A1"),
        (75.0, "B"), (100.0, "C"), (135.0, "D"), (180.0, "E"), (250.0, "F"),
    ]
    out = []
    for v in ep_gl:
        label = "G"
        for bound, cls in bounds:
            if v <= bound:
                label = cls
                break
        out.append(label)
    return out


def _construction_period(years: np.ndarray) -> list[str]:
    """Construction-period class label from the construction year."""
    out = []
    for y in years:
        if y <= 1918:
            out.append("before 1918")
        elif y <= 1945:
            out.append("1919-1945")
        elif y <= 1960:
            out.append("1946-1960")
        elif y <= 1975:
            out.append("1961-1975")
        elif y <= 1990:
            out.append("1976-1990")
        elif y <= 2005:
            out.append("1991-2005")
        else:
            out.append("after 2005")
    return out


def _quality_from_u(u_values: np.ndarray, good: float, poor: float) -> list[str]:
    """Map a U-value to a good/fair/poor quality class."""
    return [
        "good" if u <= good else ("poor" if u >= poor else "fair") for u in u_values
    ]


def _pick_buildings(
    rng: np.random.Generator,
    street_map: StreetMap,
    n_units: int,
    record_pool: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample gazetteer buildings and unit counts until *n_units* are placed.

    *record_pool* restricts the draw to a subset of gazetteer records (a
    shard's districts or ZIP codes); ``None`` draws from the whole map,
    with the exact same RNG consumption as the historical unrestricted
    path.  Returns ``(record_index_per_unit, units_in_building_per_unit)``.
    """
    record_indices: list[int] = []
    building_sizes: list[int] = []
    pool = (
        np.arange(len(street_map.records), dtype=np.intp)
        if record_pool is None
        else np.asarray(record_pool, dtype=np.intp)
    )
    if n_units > 0 and len(pool) == 0:
        raise ValueError("cannot place units: the shard's record pool is empty")
    while len(record_indices) < n_units:
        rec = int(pool[int(rng.integers(0, len(pool)))])
        size = int(np.clip(rng.geometric(0.22), 1, 60))
        take = min(size, n_units - len(record_indices))
        record_indices.extend([rec] * take)
        building_sizes.extend([size] * take)
    return (
        np.asarray(record_indices, dtype=np.intp),
        np.asarray(building_sizes, dtype=np.float64),
    )


def generate_epc_collection(config: SyntheticConfig | None = None) -> EpcCollection:
    """Generate the full synthetic Piedmont EPC collection.

    Fully deterministic in ``config.seed``.  Returns clean data; apply
    :func:`repro.dataset.noise.apply_noise` to obtain the dirty collection
    the preprocessing experiments start from.
    """
    cfg = config or SyntheticConfig()
    rng = np.random.default_rng(cfg.seed)
    schema = epc_schema()
    street_map, hierarchy = generate_street_map(
        seed=cfg.seed, streets_per_neighbourhood=cfg.streets_per_neighbourhood
    )
    n_turin = int(round(cfg.n_certificates * cfg.turin_share))
    return _generate_certificates(
        rng, cfg, schema, street_map, hierarchy,
        n_turin=n_turin, n_other=cfg.n_certificates - n_turin,
        record_pool=None, id_tag="",
    )


def _generate_certificates(
    rng: np.random.Generator,
    cfg: SyntheticConfig,
    schema: EpcSchema,
    street_map: StreetMap,
    hierarchy: RegionHierarchy,
    n_turin: int,
    n_other: int,
    record_pool: np.ndarray | None,
    id_tag: str,
) -> EpcCollection:
    """The generation core, parametrized for whole-sweep and shard use.

    Draws every attribute from *rng* in a fixed order, so the monolithic
    path (``record_pool=None``, ``id_tag=""``, the config-seeded *rng*)
    reproduces the historical byte-for-byte output, while a shard passes
    its own key-derived *rng*, a gazetteer *record_pool* restricting
    Turin placement to the shard's districts/ZIPs, and an *id_tag*
    keeping certificate ids globally unique across shards.
    """
    n = n_turin + n_other

    district_names = [d.name for d in hierarchy.districts]
    district_of_name = {name: i for i, name in enumerate(district_names)}

    # ---- placement -----------------------------------------------------
    gaz_idx_turin, building_units = _pick_buildings(
        rng, street_map, n_turin, record_pool
    )
    turin_records: list[AddressRecord] = [street_map.records[i] for i in gaz_idx_turin]
    # transpose the record list once; each per-column comprehension below
    # would otherwise re-walk all records for a single attribute
    if turin_records:
        t_street, t_house, t_zip, t_lat, t_lon, t_district, t_neigh = (
            list(col)
            for col in zip(
                *(
                    (
                        r.street, r.house_number, r.zip_code,
                        r.latitude, r.longitude, r.district, r.neighbourhood,
                    )
                    for r in turin_records
                )
            )
        )
    else:
        t_street = t_house = t_zip = t_lat = t_lon = t_district = t_neigh = []
    turin_district_idx = np.asarray(
        [district_of_name[d] for d in t_district], dtype=np.intp
    )

    other_city_idx = rng.integers(0, len(_OTHER_CITIES), size=n_other)
    other_records = [_OTHER_CITIES[i] for i in other_city_idx]

    district_idx = np.concatenate([turin_district_idx, np.full(n_other, -1, dtype=np.intp)])
    gazetteer_index = np.concatenate(
        [gaz_idx_turin, np.full(n_other, -1, dtype=np.intp)]
    )

    city = ["Turin"] * n_turin + [rec[0] for rec in other_records]
    province = ["TO"] * n_turin + [rec[1] for rec in other_records]
    district = t_district + [None] * n_other
    neighbourhood = t_neigh + [None] * n_other
    address = t_street + [
        f"via {rec[0].lower()} centro" for rec in other_records
    ]
    house_number = t_house + [
        str(int(v)) for v in rng.integers(1, 80, size=n_other)
    ]
    zip_code = t_zip + [
        f"1{rng.integers(2, 6)}100" for _ in range(n_other)
    ]

    lat = np.array(
        t_lat + [rec[2][0] for rec in other_records], dtype=np.float64
    )
    lon = np.array(
        t_lon + [rec[2][1] for rec in other_records], dtype=np.float64
    )
    # scatter non-Turin units around their town centre (~1.5 km)
    lat[n_turin:] += rng.normal(0, 0.006, n_other)
    lon[n_turin:] += rng.normal(0, 0.008, n_other)

    degree_days = np.concatenate(
        [
            np.full(n_turin, _TURIN_DEGREE_DAYS),
            np.array([rec[3] for rec in other_records], dtype=np.float64),
        ]
    ) + rng.normal(0, 25, n)

    # ---- era segments and envelope physics ------------------------------
    era_idx = _era_for_rows(rng, lat, lon, district_idx >= 0)
    era_labels = [ERA_REGIMES[i].name for i in era_idx]

    windows_replaced = _renovation_mask(rng, era_idx, "p_window_replacement")
    walls_retrofitted = _renovation_mask(rng, era_idx, "p_wall_retrofit")
    plant_renewed = _renovation_mask(rng, era_idx, "p_plant_renewal")

    u_opaque = _regime_draw(
        rng, era_idx, "u_opaque", walls_retrofitted, _RENOVATED_U_OPAQUE, 0.15, 1.10
    )
    u_windows = _regime_draw(
        rng, era_idx, "u_windows", windows_replaced, _RENOVATED_U_WINDOWS, 1.10, 5.50
    )
    eta_h = _regime_draw(
        rng, era_idx, "eta_h", plant_renewed, _RENOVATED_ETA_H, 0.20, 1.05
    )

    year_of_construction = np.empty(n, dtype=np.float64)
    for i, regime in enumerate(ERA_REGIMES):
        rows = np.flatnonzero(era_idx == i)
        lo, hi = regime.year_range
        year_of_construction[rows] = rng.integers(lo, hi + 1, size=len(rows))

    # ---- building geometry -----------------------------------------------
    categories = ("apartment block", "detached house", "terraced house", "multi-storey", "other")
    cat_probs = np.array((0.55, 0.12, 0.13, 0.16, 0.04))
    # buildings with many units are blocks; small ones lean detached/terraced
    units_per_building = np.concatenate(
        [building_units, np.clip(rng.geometric(0.25, n_other), 1, 60).astype(np.float64)]
    )
    category_idx = np.where(
        units_per_building >= 9,
        np.where(rng.random(n) < 0.7, 0, 3),
        rng.choice(len(categories), size=n, p=cat_probs),
    )
    building_category = [categories[i] for i in category_idx]

    sv_params = {0: (0.45, 0.08), 1: (0.85, 0.12), 2: (0.65, 0.10), 3: (0.38, 0.06), 4: (0.60, 0.12)}
    aspect_ratio = np.empty(n, dtype=np.float64)
    for cat, (mean, sd) in sv_params.items():
        rows = np.flatnonzero(category_idx == cat)
        if len(rows):
            aspect_ratio[rows] = _truncated_normal(rng, mean, sd, 0.20, 1.20, len(rows))

    heated_surface = np.clip(rng.lognormal(np.log(82.0), 0.42, n), 20.0, 2000.0)
    average_height = _truncated_normal(rng, 2.75, 0.18, 2.30, 4.50, n)
    heated_volume = heated_surface * average_height * rng.uniform(1.05, 1.25, n)
    dispersing_surface = aspect_ratio * heated_volume
    window_to_wall = _truncated_normal(rng, 0.16, 0.05, 0.06, 0.40, n)
    opaque_surface = dispersing_surface * rng.uniform(0.45, 0.65, n)
    glazed_surface = opaque_surface * window_to_wall

    # ---- heating demand (simplified steady-state balance) -----------------
    u_mix = u_opaque * (1.0 - window_to_wall) + u_windows * window_to_wall
    climate_factor = degree_days / _TURIN_DEGREE_DAYS
    eph = 160.0 * aspect_ratio * u_mix / eta_h * climate_factor
    eph *= rng.lognormal(0.0, 0.16, n)
    eph = np.clip(eph, 8.0, 650.0)

    ep_w = np.clip(rng.lognormal(np.log(16.0), 0.35, n), 3.0, 90.0)
    ep_c = np.clip(rng.lognormal(np.log(8.0), 0.6, n), 0.0, 80.0)
    ep_gl = eph + ep_w + 0.3 * ep_c
    co2 = ep_gl * rng.uniform(0.18, 0.25, n)
    renewable_share = np.where(
        era_idx == _ERA_INDEX["recent"],
        _truncated_normal(rng, 32.0, 12.0, 0.0, 95.0, n),
        _truncated_normal(rng, 6.0, 6.0, 0.0, 60.0, n),
    )

    # plant decomposition consistent with the global efficiency
    eta_distribution = _truncated_normal(rng, 0.94, 0.03, 0.80, 0.99, n)
    eta_emission = _truncated_normal(rng, 0.95, 0.02, 0.85, 0.99, n)
    eta_control = _truncated_normal(rng, 0.96, 0.02, 0.85, 0.995, n)
    eta_generation = np.clip(
        eta_h / (eta_distribution * eta_emission * eta_control), 0.30, 1.20
    )

    # ---- remaining quantitative attributes ---------------------------------
    floors = np.clip(rng.geometric(0.6, n), 1, 4).astype(np.float64)
    building_floors = np.where(
        category_idx == 1, rng.integers(1, 4, n), rng.integers(2, 10, n)
    ).astype(np.float64)
    roof_u = np.clip(u_opaque * rng.uniform(0.8, 1.5, n), 0.10, 3.0)
    floor_u = np.clip(u_opaque * rng.uniform(0.8, 1.4, n), 0.10, 3.0)
    wall_thickness = _truncated_normal(rng, 38.0, 8.0, 18.0, 75.0, n)
    thermal_capacity = _truncated_normal(rng, 250.0, 60.0, 60.0, 480.0, n)
    solar_factor = _truncated_normal(rng, 0.62, 0.12, 0.25, 0.88, n)
    heating_power = np.clip(heated_surface * rng.uniform(0.06, 0.14, n), 3.0, 600.0)
    dhw_power = np.clip(rng.lognormal(np.log(5.0), 0.7, n), 0.0, 120.0)
    electric = np.clip(rng.lognormal(np.log(2600.0), 0.45, n), 150.0, 30000.0)
    gas = np.clip(eph * heated_surface / 9.6 * rng.uniform(0.8, 1.2, n), 0.0, 12000.0)
    altitude = np.where(
        np.asarray(province) == "TO",
        _truncated_normal(rng, 240.0, 30.0, 150.0, 400.0, n),
        _truncated_normal(rng, 300.0, 120.0, 80.0, 900.0, n),
    )
    heating_hours = rng.choice((10.0, 12.0, 14.0, 24.0), size=n, p=(0.25, 0.35, 0.3, 0.1))
    occupants = np.clip(np.round(heated_surface / 35.0 + rng.normal(0, 0.8, n)), 1, 12)
    certificate_year = rng.choice((2016.0, 2017.0, 2018.0), size=n, p=(0.3, 0.35, 0.35))
    renovated_any = windows_replaced | walls_retrofitted | plant_renewed
    renovation_year = np.where(
        renovated_any,
        rng.integers(1995, 2018, n).astype(np.float64),
        np.maximum(year_of_construction, 1900),
    )
    net_floor_area = heated_surface * rng.uniform(0.82, 0.95, n)

    # ---- categorical attributes -------------------------------------------
    def choice(options: tuple[str, ...], p: tuple[float, ...] | None = None) -> list[str]:
        return list(rng.choice(options, size=n, p=p))

    building_type = list(
        np.where(
            rng.random(n) < cfg.e11_share,
            "E.1.1",
            rng.choice(("E.1.2", "E.1.3", "E.2", "E.3", "E.4", "E.5", "E.6", "E.7", "E.8"), size=n),
        )
    )
    heating_fuel = choice(
        ("natural gas", "oil", "LPG", "biomass", "district heating", "electricity"),
        (0.62, 0.05, 0.04, 0.06, 0.18, 0.05),
    )
    yes_no = ("yes", "no")

    columns: dict[str, tuple[ColumnKind, list | np.ndarray]] = {
        # quantitative
        "aspect_ratio": (ColumnKind.NUMERIC, aspect_ratio),
        "u_value_opaque": (ColumnKind.NUMERIC, u_opaque),
        "u_value_windows": (ColumnKind.NUMERIC, u_windows),
        "heated_surface": (ColumnKind.NUMERIC, heated_surface),
        "eta_h": (ColumnKind.NUMERIC, eta_h),
        "eph": (ColumnKind.NUMERIC, eph),
        "latitude": (ColumnKind.NUMERIC, lat),
        "longitude": (ColumnKind.NUMERIC, lon),
        "heated_volume": (ColumnKind.NUMERIC, heated_volume),
        "dispersing_surface": (ColumnKind.NUMERIC, dispersing_surface),
        "opaque_surface": (ColumnKind.NUMERIC, opaque_surface),
        "glazed_surface": (ColumnKind.NUMERIC, glazed_surface),
        "window_to_wall_ratio": (ColumnKind.NUMERIC, window_to_wall),
        "net_floor_area": (ColumnKind.NUMERIC, net_floor_area),
        "average_height": (ColumnKind.NUMERIC, average_height),
        "floors": (ColumnKind.NUMERIC, floors),
        "building_floors": (ColumnKind.NUMERIC, building_floors),
        "apartment_units": (ColumnKind.NUMERIC, units_per_building),
        "roof_u_value": (ColumnKind.NUMERIC, roof_u),
        "floor_u_value": (ColumnKind.NUMERIC, floor_u),
        "wall_thickness": (ColumnKind.NUMERIC, wall_thickness),
        "thermal_capacity": (ColumnKind.NUMERIC, thermal_capacity),
        "solar_factor_windows": (ColumnKind.NUMERIC, solar_factor),
        "eta_generation": (ColumnKind.NUMERIC, eta_generation),
        "eta_distribution": (ColumnKind.NUMERIC, eta_distribution),
        "eta_emission": (ColumnKind.NUMERIC, eta_emission),
        "eta_control": (ColumnKind.NUMERIC, eta_control),
        "heating_power": (ColumnKind.NUMERIC, heating_power),
        "dhw_power": (ColumnKind.NUMERIC, dhw_power),
        "ep_w": (ColumnKind.NUMERIC, ep_w),
        "ep_c": (ColumnKind.NUMERIC, ep_c),
        "ep_gl": (ColumnKind.NUMERIC, ep_gl),
        "co2_emissions": (ColumnKind.NUMERIC, co2),
        "renewable_share": (ColumnKind.NUMERIC, renewable_share),
        "electric_consumption": (ColumnKind.NUMERIC, electric),
        "gas_consumption": (ColumnKind.NUMERIC, gas),
        "degree_days": (ColumnKind.NUMERIC, degree_days),
        "altitude": (ColumnKind.NUMERIC, altitude),
        "heating_hours": (ColumnKind.NUMERIC, heating_hours),
        "occupants": (ColumnKind.NUMERIC, occupants),
        "year_of_construction": (ColumnKind.NUMERIC, year_of_construction),
        "certificate_year": (ColumnKind.NUMERIC, certificate_year),
        "renovation_year": (ColumnKind.NUMERIC, renovation_year),
        # identity and location
        "certificate_id": (
            ColumnKind.TEXT,
            [f"EPC-{cfg.seed}-{id_tag}{i:06d}" for i in range(n)],
        ),
        "address": (ColumnKind.TEXT, address),
        "house_number": (ColumnKind.TEXT, house_number),
        "zip_code": (ColumnKind.CATEGORICAL, zip_code),
        "city": (ColumnKind.CATEGORICAL, city),
        "province": (ColumnKind.CATEGORICAL, province),
        "region": (ColumnKind.CATEGORICAL, ["Piedmont"] * n),
        "district": (ColumnKind.CATEGORICAL, district),
        "neighbourhood": (ColumnKind.CATEGORICAL, neighbourhood),
        "cadastral_parcel": (
            ColumnKind.TEXT,
            [f"F{int(v)}-P{int(w)}" for v, w in zip(rng.integers(1, 400, n), rng.integers(1, 900, n))],
        ),
        "building_id": (
            ColumnKind.TEXT,
            [
                f"BLD-{gi:05d}" if gi >= 0 else f"BLD-X-{i:05d}"
                for i, gi in enumerate(gazetteer_index)
            ],
        ),
        # classification
        "energy_class": (ColumnKind.CATEGORICAL, _energy_class(ep_gl)),
        "building_type": (ColumnKind.CATEGORICAL, building_type),
        "construction_period": (ColumnKind.CATEGORICAL, _construction_period(year_of_construction)),
        "building_category": (ColumnKind.CATEGORICAL, building_category),
        "unit_position": (
            ColumnKind.CATEGORICAL,
            choice(("ground floor", "intermediate floor", "top floor", "whole building"),
                   (0.2, 0.5, 0.2, 0.1)),
        ),
        "certificate_reason": (
            ColumnKind.CATEGORICAL,
            choice(("sale", "rental", "new construction", "renovation", "energy requalification", "other"),
                   (0.45, 0.3, 0.06, 0.08, 0.06, 0.05)),
        ),
        "certification_software": (
            ColumnKind.CATEGORICAL,
            choice(("CENED", "DOCET", "TerMus", "MC4", "EC700", "other"),
                   (0.25, 0.2, 0.2, 0.15, 0.15, 0.05)),
        ),
        "certifier_id": (
            ColumnKind.TEXT, [f"CERT-{int(v):04d}" for v in rng.integers(1, 1500, n)]
        ),
        # envelope descriptors
        "wall_type": (
            ColumnKind.CATEGORICAL,
            [
                ("stone" if e == 0 else "solid brick") if rng_v < 0.5 else
                ("hollow brick" if e >= 2 else "concrete")
                for e, rng_v in zip(era_idx, rng.random(n))
            ],
        ),
        "wall_insulation": (
            ColumnKind.CATEGORICAL,
            [
                "external coat" if w else ("full" if e >= 3 else ("partial" if e == 2 else "none"))
                for w, e in zip(walls_retrofitted, era_idx)
            ],
        ),
        "roof_type": (
            ColumnKind.CATEGORICAL,
            choice(("pitched tiles", "flat slab", "wooden pitched", "metal", "green roof"),
                   (0.5, 0.25, 0.18, 0.05, 0.02)),
        ),
        "roof_insulation": (
            ColumnKind.CATEGORICAL,
            ["full" if e >= 3 else ("partial" if e == 2 else "none") for e in era_idx],
        ),
        "floor_type": (
            ColumnKind.CATEGORICAL,
            choice(("on ground", "on cellar", "on pilotis", "on unheated room"),
                   (0.3, 0.4, 0.05, 0.25)),
        ),
        "window_frame": (
            ColumnKind.CATEGORICAL,
            [
                ("PVC" if rng_v < 0.5 else "aluminium thermal break") if w
                else ("wood" if e <= 1 else "aluminium")
                for w, e, rng_v in zip(windows_replaced, era_idx, rng.random(n))
            ],
        ),
        "glazing_type": (
            ColumnKind.CATEGORICAL,
            [
                ("double low-e" if rng_v < 0.6 else "triple") if w or e == 4
                else ("single" if e <= 1 else "double")
                for w, e, rng_v in zip(windows_replaced, era_idx, rng.random(n))
            ],
        ),
        "shutters": (ColumnKind.CATEGORICAL, choice(("present", "absent"), (0.85, 0.15))),
        "prevailing_exposure": (
            ColumnKind.CATEGORICAL, choice(("N", "NE", "E", "SE", "S", "SW", "W", "NW"))
        ),
        "envelope_state": (ColumnKind.CATEGORICAL, _quality_from_u(u_opaque, 0.45, 0.80)),
        "thermal_bridges_corrected": (
            ColumnKind.CATEGORICAL, ["yes" if e >= 3 else "no" for e in era_idx]
        ),
        # heating plant
        "heating_fuel": (ColumnKind.CATEGORICAL, heating_fuel),
        "heating_type": (
            ColumnKind.CATEGORICAL,
            [
                "district" if f == "district heating" else
                ("heat pump" if f == "electricity" else ("centralized" if u >= 9 else "autonomous"))
                for f, u in zip(heating_fuel, units_per_building)
            ],
        ),
        "generator_type": (
            ColumnKind.CATEGORICAL,
            [
                "district exchanger" if f == "district heating" else
                "heat pump" if f == "electricity" else
                "biomass boiler" if f == "biomass" else
                ("condensing boiler" if p else "standard boiler")
                for f, p in zip(heating_fuel, plant_renewed | (era_idx == 4))
            ],
        ),
        "emitter_type": (
            ColumnKind.CATEGORICAL,
            ["radiant floor" if e == 4 and rng_v < 0.5 else "radiators"
             for e, rng_v in zip(era_idx, rng.random(n))],
        ),
        "distribution_type": (
            ColumnKind.CATEGORICAL,
            choice(("vertical columns", "horizontal ring", "autonomous ring", "none"),
                   (0.35, 0.25, 0.35, 0.05)),
        ),
        "regulation_type": (
            ColumnKind.CATEGORICAL,
            [
                "climatic+valves" if p else ("thermostatic valves" if e >= 2 else "none")
                for p, e in zip(plant_renewed, era_idx)
            ],
        ),
        "heat_metering": (
            ColumnKind.CATEGORICAL,
            ["yes" if (u >= 9 and rng_v < 0.7) else "no"
             for u, rng_v in zip(units_per_building, rng.random(n))],
        ),
        "chimney_type": (
            ColumnKind.CATEGORICAL,
            choice(("individual", "collective", "wall vented", "none"), (0.4, 0.3, 0.25, 0.05)),
        ),
        # hot water
        "dhw_fuel": (ColumnKind.CATEGORICAL, heating_fuel),
        "dhw_generator": (
            ColumnKind.CATEGORICAL,
            choice(("combined with heating", "dedicated boiler", "electric heater",
                    "heat pump", "solar assisted"), (0.55, 0.2, 0.15, 0.05, 0.05)),
        ),
        "dhw_storage": (ColumnKind.CATEGORICAL, choice(("present", "absent"), (0.45, 0.55))),
        # cooling and ventilation
        "cooling_system": (
            ColumnKind.CATEGORICAL,
            choice(("none", "split units", "centralized", "heat pump reversible"),
                   (0.55, 0.35, 0.04, 0.06)),
        ),
        "ventilation_type": (
            ColumnKind.CATEGORICAL,
            ["heat recovery" if e == 4 and rng_v < 0.4 else "natural"
             for e, rng_v in zip(era_idx, rng.random(n))],
        ),
        "humidity_control": (ColumnKind.CATEGORICAL, choice(yes_no, (0.08, 0.92))),
        # renewables
        "solar_thermal": (
            ColumnKind.CATEGORICAL,
            ["present" if (e == 4 and rng_v < 0.45) or rng_v < 0.04 else "absent"
             for e, rng_v in zip(era_idx, rng.random(n))],
        ),
        "photovoltaic": (
            ColumnKind.CATEGORICAL,
            ["present" if (e == 4 and rng_v < 0.35) or rng_v < 0.03 else "absent"
             for e, rng_v in zip(era_idx, rng.random(n))],
        ),
        "other_renewables": (
            ColumnKind.CATEGORICAL,
            choice(("none", "geothermal", "biomass", "micro wind", "mixed"),
                   (0.93, 0.02, 0.04, 0.005, 0.005)),
        ),
        # administrative / compliance flags
        "new_building": (
            ColumnKind.CATEGORICAL, ["yes" if e == 4 else "no" for e in era_idx]
        ),
        "major_renovation": (
            ColumnKind.CATEGORICAL, ["yes" if r else "no" for r in renovated_any]
        ),
        "public_building": (ColumnKind.CATEGORICAL, choice(yes_no, (0.03, 0.97))),
        "historic_constraint": (
            ColumnKind.CATEGORICAL,
            ["yes" if (e == 0 and rng_v < 0.25) else "no"
             for e, rng_v in zip(era_idx, rng.random(n))],
        ),
        "occupied_at_inspection": (ColumnKind.CATEGORICAL, choice(yes_no, (0.7, 0.3))),
        "inspection_performed": (ColumnKind.CATEGORICAL, choice(yes_no, (0.93, 0.07))),
        "project_data_used": (ColumnKind.CATEGORICAL, choice(yes_no, (0.25, 0.75))),
        "energy_audit_attached": (ColumnKind.CATEGORICAL, choice(yes_no, (0.1, 0.9))),
        "improvement_recommended": (
            ColumnKind.CATEGORICAL, ["no" if e == 4 else "yes" for e in era_idx]
        ),
        "recommended_envelope_work": (
            ColumnKind.CATEGORICAL,
            ["yes" if u > 0.65 else "no" for u in u_opaque],
        ),
        "recommended_plant_work": (
            ColumnKind.CATEGORICAL,
            ["yes" if v < 0.70 else "no" for v in eta_h],
        ),
        "recommended_renewables": (ColumnKind.CATEGORICAL, choice(yes_no, (0.4, 0.6))),
        "class_after_works": (
            ColumnKind.CATEGORICAL, _energy_class(np.maximum(ep_gl * 0.55, 15.0))
        ),
        "nzeb": (
            ColumnKind.CATEGORICAL,
            ["yes" if (e == 4 and g <= 30.0) else "no" for e, g in zip(era_idx, ep_gl)],
        ),
        "summer_envelope_quality": (
            ColumnKind.CATEGORICAL, _quality_from_u(u_windows, 1.8, 3.0)
        ),
        "winter_envelope_quality": (
            ColumnKind.CATEGORICAL, _quality_from_u(u_opaque, 0.45, 0.80)
        ),
        "adjacent_heated_units": (
            ColumnKind.CATEGORICAL,
            choice(("none", "one side", "two sides", "three or more"),
                   (0.15, 0.3, 0.35, 0.2)),
        ),
        "basement_present": (ColumnKind.CATEGORICAL, choice(yes_no, (0.55, 0.45))),
        "attic_present": (ColumnKind.CATEGORICAL, choice(yes_no, (0.4, 0.6))),
        "attic_heated": (ColumnKind.CATEGORICAL, choice(yes_no, (0.12, 0.88))),
        "garage_present": (ColumnKind.CATEGORICAL, choice(yes_no, (0.45, 0.55))),
        "lift_present": (
            ColumnKind.CATEGORICAL,
            ["yes" if (f >= 4 and rng_v < 0.8) else "no"
             for f, rng_v in zip(building_floors, rng.random(n))],
        ),
        "gas_connection": (
            ColumnKind.CATEGORICAL,
            ["yes" if f in ("natural gas",) or rng_v < 0.5 else "no"
             for f, rng_v in zip(heating_fuel, rng.random(n))],
        ),
        "district_heating_available": (
            ColumnKind.CATEGORICAL,
            ["yes" if f == "district heating" or rng_v < 0.25 else "no"
             for f, rng_v in zip(heating_fuel, rng.random(n))],
        ),
        "smart_thermostat": (ColumnKind.CATEGORICAL, choice(yes_no, (0.12, 0.88))),
        "condensing_ready_flue": (ColumnKind.CATEGORICAL, choice(yes_no, (0.5, 0.5))),
        "window_replacement_done": (
            ColumnKind.CATEGORICAL, ["yes" if w else "no" for w in windows_replaced]
        ),
        "facade_renovated": (
            ColumnKind.CATEGORICAL, ["yes" if w else "no" for w in walls_retrofitted]
        ),
        "roof_renovated": (ColumnKind.CATEGORICAL, choice(yes_no, (0.2, 0.8))),
        "plant_renovated": (
            ColumnKind.CATEGORICAL, ["yes" if p else "no" for p in plant_renewed]
        ),
        "anti_legionella": (ColumnKind.CATEGORICAL, choice(yes_no, (0.3, 0.7))),
        "water_saving_devices": (ColumnKind.CATEGORICAL, choice(yes_no, (0.35, 0.65))),
        "led_lighting": (ColumnKind.CATEGORICAL, choice(yes_no, (0.4, 0.6))),
        "building_automation": (
            ColumnKind.CATEGORICAL,
            ["A" if e == 4 and rng_v < 0.3 else ("B" if e >= 3 else ("C" if e >= 1 else "D"))
             for e, rng_v in zip(era_idx, rng.random(n))],
        ),
        "epc_validity": (
            ColumnKind.CATEGORICAL, choice(("valid", "expired", "replaced"), (0.93, 0.04, 0.03))
        ),
        "data_source": (
            ColumnKind.CATEGORICAL,
            choice(("online portal", "certified email", "paper", "bulk import"),
                   (0.8, 0.12, 0.03, 0.05)),
        ),
        "quality_check_passed": (
            ColumnKind.CATEGORICAL, choice(("passed", "warning", "failed"), (0.9, 0.08, 0.02))
        ),
        "subsidized": (ColumnKind.CATEGORICAL, choice(yes_no, (0.07, 0.93))),
        "rented": (ColumnKind.CATEGORICAL, choice(yes_no, (0.3, 0.7))),
        "owner_occupied": (ColumnKind.CATEGORICAL, choice(yes_no, (0.6, 0.4))),
        "climatic_zone": (
            ColumnKind.CATEGORICAL,
            ["E" if p == "TO" else rng.choice(("D", "E", "F")) for p in province],
        ),
        "urban_context": (
            ColumnKind.CATEGORICAL,
            choice(("historic centre", "dense urban", "suburban", "rural"),
                   (0.15, 0.5, 0.28, 0.07)),
        ),
    }

    # assemble the table in schema order, checking completeness
    missing = [name for name in schema.names if name not in columns]
    extra = [name for name in columns if name not in schema]
    if missing or extra:
        raise RuntimeError(
            f"generator out of sync with schema: missing={missing}, extra={extra}"
        )
    table = Table(
        [
            Column.from_kind(name, columns[name][0], columns[name][1])
            for name in schema.names
        ]
    )
    return EpcCollection(
        table=table,
        schema=schema,
        street_map=street_map,
        hierarchy=hierarchy,
        era_labels=era_labels,
        gazetteer_index=gazetteer_index,
    )


# ---------------------------------------------------------------------------
# Sharded generation
# ---------------------------------------------------------------------------
#
# A shard is generated *independently*: its RNG is seeded from the
# (collection seed, shard key) pair, never from the position of the shard
# in a sweep, so shard N's bytes are identical whether it is generated
# alone, re-generated after editing a sibling, or produced in a full
# sweep.  That independence is what makes shard-granular caching sound —
# the recipe below *is* the content address of the shard's input.


@dataclass(frozen=True)
class ShardRecipe:
    """A self-contained description of one generation shard.

    ``key`` is the stable shard identity (``district:Centro``,
    ``zip:10121``, ``other``, ``part:03``); ``pool`` restricts Turin
    placement to a gazetteer subset (``None`` = whole map) and is resolved
    against the street map at generation time, so the recipe stays a few
    plain strings and ints — trivially fingerprintable.
    """

    key: str
    n_turin: int
    n_other: int
    #: ``None`` (whole map), ``"district:<name>"`` or ``"zip:<code>"``.
    pool: str | None = None

    @property
    def n_certificates(self) -> int:
        """Total rows this shard generates."""
        return self.n_turin + self.n_other

    @property
    def id_tag(self) -> str:
        """The certificate-id infix keeping ids unique across shards."""
        safe = "".join(ch if ch.isalnum() else "-" for ch in self.key)
        return f"{safe}-"


def shard_seed_sequence(seed: int, key: str) -> np.random.SeedSequence:
    """The per-shard RNG seed: collection seed + hashed shard key.

    The key is folded through SHA-256 (not ``hash()``, which is
    salted per process) so the same ``(seed, key)`` pair yields the same
    stream on every machine and in every worker.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return np.random.SeedSequence(
        [int(seed), int.from_bytes(digest[:8], "little")]
    )


def _apportion(total: int, weights: list[float]) -> list[int]:
    """Split *total* into integer parts proportional to *weights*.

    Largest-remainder method with a deterministic tie-break (earlier
    index wins), so the same inputs always yield the same split and the
    parts sum exactly to *total*.
    """
    if not weights:
        return []
    w = np.asarray(weights, dtype=np.float64)
    if w.sum() <= 0:
        raise ValueError("apportionment weights must have a positive sum")
    shares = total * w / w.sum()
    base = np.floor(shares).astype(np.int64)
    order = sorted(
        range(len(w)), key=lambda i: (-(float(shares[i]) - int(base[i])), i)
    )
    for i in order[: int(total - base.sum())]:
        base[i] += 1
    return [int(v) for v in base]


def _pool_indices(street_map: StreetMap, pool: str | None) -> np.ndarray | None:
    """Resolve a :class:`ShardRecipe` pool spec to gazetteer indices."""
    if pool is None:
        return None
    field_name, __, wanted = pool.partition(":")
    if field_name == "district":
        match = [
            i for i, r in enumerate(street_map.records) if r.district == wanted
        ]
    elif field_name == "zip":
        match = [
            i for i, r in enumerate(street_map.records) if r.zip_code == wanted
        ]
    else:
        raise ValueError(f"unknown record pool spec {pool!r}")
    return np.asarray(match, dtype=np.intp)


def plan_generation_shards(
    config: SyntheticConfig | None, by: str | int
) -> tuple[ShardRecipe, ...]:
    """Deterministic shard recipes covering the whole collection.

    *by* selects the partition key:

    * ``"by-district"`` — one shard per Turin district (sized by its
      gazetteer weight) plus one ``other`` shard for the non-Turin towns;
    * ``"by-zip"`` — same, keyed on Turin ZIP codes;
    * an integer ``N`` — ``N`` near-equal shards, each with the
      collection's Turin/other mix and the whole gazetteer as pool.

    Shard sizes always sum exactly to ``config.n_certificates``, and the
    recipe tuple depends only on (config, street map) — never on which
    shards were generated before.
    """
    cfg = config or SyntheticConfig()
    n_turin = int(round(cfg.n_certificates * cfg.turin_share))
    n_other = cfg.n_certificates - n_turin
    if isinstance(by, int) or (isinstance(by, str) and by.isdigit()):
        count = int(by)
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        turin_sizes = _apportion(n_turin, [1.0] * count)
        other_sizes = _apportion(n_other, [1.0] * count)
        return tuple(
            ShardRecipe(f"part:{i:02d}", turin_sizes[i], other_sizes[i])
            for i in range(count)
        )

    street_map, __ = generate_street_map(
        seed=cfg.seed, streets_per_neighbourhood=cfg.streets_per_neighbourhood
    )
    if by in ("by-district", "district"):
        field_name = "district"
        keys = list(
            dict.fromkeys(r.district for r in street_map.records)
        )
    elif by in ("by-zip", "zip"):
        field_name = "zip"
        keys = sorted(dict.fromkeys(r.zip_code for r in street_map.records))
    else:
        raise ValueError(
            f"unknown shard scheme {by!r}; use 'by-district', 'by-zip' or a count"
        )
    counts: dict[str, int] = {key: 0 for key in keys}
    for record in street_map.records:
        value = getattr(record, "district" if field_name == "district" else "zip_code")
        counts[value] += 1
    sizes = _apportion(n_turin, [float(counts[k]) for k in keys])
    recipes = [
        ShardRecipe(
            f"{field_name}:{key}", sizes[i], 0, pool=f"{field_name}:{key}"
        )
        for i, key in enumerate(keys)
    ]
    if n_other > 0:
        recipes.append(ShardRecipe("other", 0, n_other))
    return tuple(recipes)


def generate_epc_shard(
    config: SyntheticConfig | None,
    recipe: ShardRecipe,
    street_map: StreetMap | None = None,
    hierarchy: RegionHierarchy | None = None,
) -> EpcCollection:
    """Generate one shard of the collection, independently of its siblings.

    The RNG stream is derived from ``(config.seed, recipe.key)`` only, so
    the shard's bytes never depend on which other shards exist or ran
    first.  Pass the shared *street_map*/*hierarchy* to skip regenerating
    them per shard (they are themselves deterministic in the seed, so the
    output is identical either way).
    """
    cfg = config or SyntheticConfig()
    if street_map is None or hierarchy is None:
        street_map, hierarchy = generate_street_map(
            seed=cfg.seed,
            streets_per_neighbourhood=cfg.streets_per_neighbourhood,
        )
    rng = np.random.default_rng(shard_seed_sequence(cfg.seed, recipe.key))
    return _generate_certificates(
        rng, cfg, epc_schema(), street_map, hierarchy,
        n_turin=recipe.n_turin, n_other=recipe.n_other,
        record_pool=_pool_indices(street_map, recipe.pool),
        id_tag=recipe.id_tag,
    )


def merge_epc_collections(collections: list[EpcCollection]) -> EpcCollection:
    """Concatenate shard collections into one, in the given order.

    The merged table is the row-wise concatenation (``Table.vstack``), and
    the ground truth (era labels, gazetteer index) concatenates in the
    same order, so merging the shards of :func:`plan_generation_shards`
    in recipe order yields a deterministic whole-collection view.
    """
    if not collections:
        raise ValueError("cannot merge zero collections")
    table = collections[0].table
    for other in collections[1:]:
        table = table.vstack(other.table)
    era_labels = [label for c in collections for label in c.era_labels]
    gazetteer_index = np.concatenate(
        [c.gazetteer_index for c in collections]
    )
    first = collections[0]
    return EpcCollection(
        table=table,
        schema=first.schema,
        street_map=first.street_map,
        hierarchy=first.hierarchy,
        era_labels=era_labels,
        gazetteer_index=gazetteer_index,
    )
