"""A synthetic referenced street map for a Turin-like city.

The paper's geospatial cleaning step compares EPC addresses against "a
referenced street map ... containing all the detailed information on
streets, including street names, house numbers, ZIP Code and geolocation"
(Section 2.1.1), concretely the open gazetteer published by the municipality
of Turin.  That dataset is not available offline, so this module generates a
deterministic stand-in with the same structure:

* a city polygon centred on Turin (45.07 N, 7.68 E) tiled into **8 districts**
  (Turin's real *circoscrizioni*) and **26 named neighbourhoods**;
* ~1000+ streets with Italian odonym morphology (*via/corso/piazza* +
  person/place names), each a segment inside one neighbourhood;
* per-street civic numbers with individual (lat, lon) positions and the
  neighbourhood's ZIP code.

Everything is a pure function of the seed, so cleaning experiments are
reproducible and ground truth (which gazetteer entry an EPC really points
at) is known exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo.regions import Granularity, Region, RegionHierarchy
from ..text.levenshtein import GazetteerIndex
from ..text.normalize import normalize_address

__all__ = ["AddressRecord", "StreetMap", "generate_street_map", "turin_like_hierarchy"]

#: City centre used for the synthetic layout (Turin).
CITY_CENTER = (45.0703, 7.6869)
#: Half-extents of the city rectangle in degrees (approx 13 km x 14 km).
CITY_HALF_LAT = 0.058
CITY_HALF_LON = 0.088

_STREET_KINDS = ("via", "via", "via", "via", "corso", "corso", "piazza", "viale", "largo", "strada", "vicolo")

_NAME_POOL = (
    "roma", "garibaldi", "cavour", "mazzini", "verdi", "dante", "petrarca",
    "leopardi", "manzoni", "carducci", "pascoli", "foscolo", "alfieri",
    "gramsci", "matteotti", "gobetti", "einaudi", "galilei", "volta",
    "marconi", "fermi", "meucci", "torricelli", "avogadro", "lagrange",
    "cristoforo colombo", "amerigo vespucci", "marco polo", "duca degli abruzzi",
    "vittorio emanuele", "umberto", "re umberto", "regina margherita",
    "principe amedeo", "duchessa jolanda", "emanuele filiberto",
    "san francesco", "santa teresa", "san massimo", "santa giulia",
    "san donato", "santa rita", "san paolo", "san secondo", "sant ambrogio",
    "madonna di campagna", "gran madre", "superga", "monviso", "monte rosa",
    "gran paradiso", "cervino", "monte bianco", "dora riparia", "stura",
    "sangone", "po", "tanaro", "bormida", "orco", "pellice", "chisone",
    "milano", "genova", "venezia", "firenze", "bologna", "napoli", "palermo",
    "cagliari", "trieste", "trento", "bolzano", "aosta", "cuneo", "asti",
    "alessandria", "novara", "vercelli", "biella", "ivrea", "pinerolo",
    "moncalieri", "rivoli", "chieri", "carmagnola", "savigliano", "saluzzo",
    "fratelli bandiera", "fratelli rosselli", "quattro marzo", "venti settembre",
    "ventiquattro maggio", "primo maggio", "due giugno", "otto marzo",
    "della repubblica", "della liberta", "della pace", "dell unita",
    "dei mille", "delle alpi", "del carmine", "della consolata",
    "nizza", "lingotto", "mirafiori", "vanchiglia", "aurora", "barriera",
    "campidoglio", "cenisia", "crocetta", "parella", "pozzo strada",
    "san salvario", "vallette", "falchera", "regio parco", "borgo vittoria",
    "giuseppe giacosa", "guido reni", "tiziano", "caravaggio", "botticelli",
    "michelangelo", "raffaello", "leonardo da vinci", "donatello",
    "bernini", "borromini", "juvarra", "guarini", "antonelli", "mollino",
    "gioberti", "rosmini", "beccaria", "vico", "machiavelli", "guicciardini",
    "de gasperi", "pertini", "saragat", "nenni", "togliatti", "berlinguer",
    "salvo d acquisto", "nino bixio", "pietro micca", "paleocapa",
    "sacchi", "magenta", "solferino", "san martino", "curtatone", "montanara",
    "goito", "palestro", "varese", "legnano", "aspromonte", "calatafimi",
    "bezzecca", "mentana", "villafranca", "custoza", "lissa", "adua",
)

#: Turin's eight administrative districts (circoscrizioni).
_DISTRICT_NAMES = (
    "Circoscrizione 1 Centro",
    "Circoscrizione 2 Santa Rita",
    "Circoscrizione 3 San Paolo",
    "Circoscrizione 4 San Donato",
    "Circoscrizione 5 Borgo Vittoria",
    "Circoscrizione 6 Barriera di Milano",
    "Circoscrizione 7 Aurora",
    "Circoscrizione 8 San Salvario",
)

#: 26 statistical neighbourhoods, grouped under their district index.
_NEIGHBOURHOOD_NAMES: dict[int, tuple[str, ...]] = {
    0: ("Centro", "Crocetta", "Quadrilatero"),
    1: ("Santa Rita", "Mirafiori Nord", "Mirafiori Sud"),
    2: ("San Paolo", "Cenisia", "Pozzo Strada"),
    3: ("San Donato", "Campidoglio", "Parella"),
    4: ("Borgo Vittoria", "Madonna di Campagna", "Vallette"),
    5: ("Barriera di Milano", "Falchera", "Regio Parco"),
    6: ("Aurora", "Vanchiglia", "Madonna del Pilone"),
    7: ("San Salvario", "Nizza Millefonti", "Lingotto", "Borgo Po", "Cavoretto"),
}


@dataclass(frozen=True)
class AddressRecord:
    """One gazetteer entry: a civic number on a street."""

    street: str
    house_number: str
    zip_code: str
    latitude: float
    longitude: float
    district: str
    neighbourhood: str

    @property
    def full_address(self) -> str:
        """Street plus civic number."""
        return f"{self.street} {self.house_number}"


@dataclass
class StreetMap:
    """The referenced street map: streets, civics, ZIPs and geolocation.

    ``records`` is the flat gazetteer; ``street_names`` the distinct street
    names.  The bucketed Levenshtein index over the street names is built
    lazily and cached on the instance (:meth:`match_index`): building it
    costs one pass over the gazetteer, and every
    :class:`~repro.preprocessing.address_cleaner.AddressCleaner` sharing
    this map then reuses the same index.
    """

    records: list[AddressRecord] = field(default_factory=list)
    _match_index: GazetteerIndex | None = field(
        default=None, repr=False, compare=False
    )

    def street_names(self) -> list[str]:
        """Distinct street names, sorted, as stored (already normalized)."""
        return sorted({r.street for r in self.records})

    def records_by_street(self) -> dict[str, list[AddressRecord]]:
        """Mapping street name -> its civic-number records."""
        by_street: dict[str, list[AddressRecord]] = {}
        for rec in self.records:
            by_street.setdefault(rec.street, []).append(rec)
        return by_street

    def match_index(self) -> GazetteerIndex:
        """The cached length/first-token index over :meth:`street_names`.

        Candidate order inside the index matches :meth:`street_names`, so
        matched indices can be mapped straight back to street names.  The
        cache assumes ``records`` is not mutated after the first call (the
        generator builds maps once and the pipeline treats them as
        read-only).
        """
        if self._match_index is None or len(self._match_index) != len(
            set(r.street for r in self.records)
        ):
            self._match_index = GazetteerIndex(self.street_names())
        return self._match_index

    def __len__(self) -> int:
        return len(self.records)


def _rect(lat0: float, lon0: float, lat1: float, lon1: float) -> list[tuple[float, float]]:
    return [(lat0, lon0), (lat0, lon1), (lat1, lon1), (lat1, lon0)]


def turin_like_hierarchy() -> RegionHierarchy:
    """The synthetic city's administrative hierarchy.

    The city rectangle is tiled by a 4x2 grid of districts; each district is
    split vertically into its neighbourhoods.  The layout is deterministic
    (no randomness) so region names are stable across seeds.
    """
    c_lat, c_lon = CITY_CENTER
    lat_lo, lat_hi = c_lat - CITY_HALF_LAT, c_lat + CITY_HALF_LAT
    lon_lo, lon_hi = c_lon - CITY_HALF_LON, c_lon + CITY_HALF_LON
    city = Region("Turin", Granularity.CITY, _rect(lat_lo, lon_lo, lat_hi, lon_hi))

    districts: list[Region] = []
    neighbourhoods: list[Region] = []
    n_rows, n_cols = 2, 4
    dlat = (lat_hi - lat_lo) / n_rows
    dlon = (lon_hi - lon_lo) / n_cols
    for idx, name in enumerate(_DISTRICT_NAMES):
        row, col = divmod(idx, n_cols)
        d_lat0 = lat_lo + row * dlat
        d_lon0 = lon_lo + col * dlon
        district = Region(
            name, Granularity.DISTRICT,
            _rect(d_lat0, d_lon0, d_lat0 + dlat, d_lon0 + dlon),
            parent=city.name,
        )
        districts.append(district)
        names = _NEIGHBOURHOOD_NAMES[idx]
        slice_lon = dlon / len(names)
        for j, n_name in enumerate(names):
            ring = _rect(
                d_lat0, d_lon0 + j * slice_lon,
                d_lat0 + dlat, d_lon0 + (j + 1) * slice_lon,
            )
            neighbourhoods.append(
                Region(n_name, Granularity.NEIGHBOURHOOD, ring, parent=name)
            )
    return RegionHierarchy(city=city, districts=districts, neighbourhoods=neighbourhoods)


def _zip_codes(neighbourhoods: list[Region]) -> dict[str, str]:
    """Assign one Turin-style ZIP (CAP 101xx) per neighbourhood."""
    return {
        region.name: f"101{21 + i:02d}" for i, region in enumerate(neighbourhoods)
    }


def generate_street_map(
    seed: int = 2322, streets_per_neighbourhood: int = 42
) -> tuple[StreetMap, RegionHierarchy]:
    """Generate the referenced street map and the region hierarchy.

    Each street is a straight segment fully inside one neighbourhood, with
    civic numbers 1..N spaced along it (odd/even on alternating sides, as in
    Italian numbering).  Street names are unique city-wide, matching how the
    real Turin gazetteer disambiguates.
    """
    rng = np.random.default_rng(seed)
    hierarchy = turin_like_hierarchy()
    zips = _zip_codes(hierarchy.neighbourhoods)

    # Build the pool of unique street names.
    combos = [
        f"{kind} {name}" for name in _NAME_POOL for kind in dict.fromkeys(_STREET_KINDS)
    ]
    rng.shuffle(combos)
    needed = streets_per_neighbourhood * len(hierarchy.neighbourhoods)
    if needed > len(combos):
        raise ValueError(
            f"name pool too small: need {needed} streets, have {len(combos)}"
        )

    records: list[AddressRecord] = []
    name_cursor = 0
    for region in hierarchy.neighbourhoods:
        lo_lat, lo_lon, hi_lat, hi_lon = region.bounding_box()
        pad_lat = (hi_lat - lo_lat) * 0.06
        pad_lon = (hi_lon - lo_lon) * 0.06
        for _ in range(streets_per_neighbourhood):
            street = normalize_address(combos[name_cursor])
            name_cursor += 1
            start_lat = rng.uniform(lo_lat + pad_lat, hi_lat - pad_lat)
            start_lon = rng.uniform(lo_lon + pad_lon, hi_lon - pad_lon)
            angle = rng.uniform(0, np.pi)
            length_deg = rng.uniform(0.002, 0.008)
            end_lat = np.clip(
                start_lat + length_deg * np.sin(angle), lo_lat + pad_lat, hi_lat - pad_lat
            )
            end_lon = np.clip(
                start_lon + length_deg * np.cos(angle), lo_lon + pad_lon, hi_lon - pad_lon
            )
            n_civics = int(rng.integers(6, 40))
            side_offset = 0.00012  # ~13 m between street sides
            for civic in range(1, n_civics + 1):
                t = civic / (n_civics + 1)
                side = 1.0 if civic % 2 else -1.0
                lat = start_lat + t * (end_lat - start_lat) + side * side_offset
                lon = start_lon + t * (end_lon - start_lon)
                records.append(
                    AddressRecord(
                        street=street,
                        house_number=str(civic),
                        zip_code=zips[region.name],
                        latitude=float(lat),
                        longitude=float(lon),
                        district=region.parent or "",
                        neighbourhood=region.name,
                    )
                )
    return StreetMap(records=records), hierarchy
