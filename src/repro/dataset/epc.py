"""Typed record view over EPC tables, plus schema validation.

The columnar :class:`~repro.dataset.table.Table` is the processing
representation; user-facing code often wants *one certificate* with named,
typed accessors.  :class:`EpcRecord` is that view — a lightweight wrapper
over a table row exposing the paper's named attributes as properties and
everything else through :meth:`get`.

:func:`validate_table` checks a table against the
:class:`~repro.dataset.schema.EpcSchema`: plausibility ranges for numeric
attributes, closed vocabularies for categorical ones.  The paper's
pre-processing assumes such screening has happened upstream of outlier
detection; real registries run exactly this kind of rule check (the
``quality_check_passed`` attribute in the schema models its outcome).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import EpcSchema, epc_schema
from .table import ColumnKind, Table

__all__ = ["EpcRecord", "records", "ValidationIssue", "validate_table"]


class EpcRecord:
    """A read-only view of one certificate (one table row).

    Missing numeric values come back as ``None`` (not NaN), so record
    consumers never need NumPy semantics.
    """

    __slots__ = ("_table", "_row")

    def __init__(self, table: Table, row: int):
        self._table = table
        self._row = row

    def get(self, attribute: str):
        """The value of *attribute*, with NaN normalized to ``None``."""
        value = self._table[attribute][self._row]
        if self._table.kind(attribute) is ColumnKind.NUMERIC and (
            value is None or np.isnan(value)
        ):
            return None
        return value

    # -- identity ----------------------------------------------------------

    @property
    def certificate_id(self) -> str | None:
        """Unique certificate identifier."""
        return self.get("certificate_id")

    @property
    def building_id(self) -> str | None:
        """Identifier shared by units of the same building."""
        return self.get("building_id")

    # -- location -----------------------------------------------------------

    @property
    def address(self) -> str | None:
        """Street address (free text as stored)."""
        return self.get("address")

    @property
    def house_number(self) -> str | None:
        """Civic number as stored."""
        return self.get("house_number")

    @property
    def zip_code(self) -> str | None:
        """Postal code (CAP)."""
        return self.get("zip_code")

    @property
    def city(self) -> str | None:
        """Municipality name."""
        return self.get("city")

    @property
    def coordinates(self) -> tuple[float, float] | None:
        """(lat, lon), or ``None`` when either coordinate is missing."""
        lat, lon = self.get("latitude"), self.get("longitude")
        if lat is None or lon is None:
            return None
        return float(lat), float(lon)

    @property
    def full_address(self) -> str:
        """Street + civic number, best effort."""
        parts = [p for p in (self.address, self.house_number) if p]
        return " ".join(parts)

    # -- the paper's named attributes ----------------------------------------

    @property
    def aspect_ratio(self) -> float | None:
        """Aspect ratio S/V of the building."""
        return self.get("aspect_ratio")

    @property
    def u_value_opaque(self) -> float | None:
        """Average U-value of the vertical opaque envelope (W/m2K)."""
        return self.get("u_value_opaque")

    @property
    def u_value_windows(self) -> float | None:
        """Average U-value of the windows (W/m2K)."""
        return self.get("u_value_windows")

    @property
    def heated_surface(self) -> float | None:
        """Heated floor area S_r (m2)."""
        return self.get("heated_surface")

    @property
    def eta_h(self) -> float | None:
        """Average global efficiency for space heating (ETAH)."""
        return self.get("eta_h")

    @property
    def eph(self) -> float | None:
        """Normalized primary heating energy demand EP_H (kWh/m2y)."""
        return self.get("eph")

    @property
    def energy_class(self) -> str | None:
        """EPC energy class label (A4..G)."""
        return self.get("energy_class")

    def __repr__(self) -> str:
        return (
            f"EpcRecord({self.certificate_id or '?'}, {self.full_address or 'no address'}, "
            f"class {self.energy_class or '?'})"
        )


def records(table: Table):
    """Iterate the rows of *table* as :class:`EpcRecord` views."""
    for row in range(table.n_rows):
        yield EpcRecord(table, row)


@dataclass(frozen=True)
class ValidationIssue:
    """One schema violation found in a table."""

    row: int
    attribute: str
    value: object
    reason: str


@dataclass
class ValidationReport:
    """All violations, plus per-attribute aggregation."""

    issues: list[ValidationIssue] = field(default_factory=list)
    n_rows: int = 0

    @property
    def is_valid(self) -> bool:
        """True when no violation was found."""
        return not self.issues

    def by_attribute(self) -> dict[str, int]:
        """Number of violations per attribute."""
        out: dict[str, int] = {}
        for issue in self.issues:
            out[issue.attribute] = out.get(issue.attribute, 0) + 1
        return out

    def rows_affected(self) -> set[int]:
        """The distinct rows carrying at least one violation."""
        return {issue.row for issue in self.issues}


def validate_table(
    table: Table,
    schema: EpcSchema | None = None,
    attributes: list[str] | None = None,
    max_issues: int = 10_000,
) -> ValidationReport:
    """Check *table* against the EPC schema's plausibility rules.

    Numeric attributes must fall inside their ``[lo, hi]`` range;
    categorical ones inside their closed vocabulary.  Missing values are
    always acceptable (missingness is the outlier/cleaning tier's
    concern, not validation's).  Collection stops after *max_issues*.
    """
    schema = schema or epc_schema()
    names = attributes if attributes is not None else [
        n for n in table.column_names if n in schema
    ]
    report = ValidationReport(n_rows=table.n_rows)
    for name in names:
        spec = schema.spec(name)
        column = table.column(name)
        if column.kind is ColumnKind.NUMERIC:
            values = column.values
            bad = np.zeros(len(values), dtype=bool)
            with np.errstate(invalid="ignore"):
                if spec.lo is not None:
                    bad |= values < spec.lo
                if spec.hi is not None:
                    bad |= values > spec.hi
            for row in np.flatnonzero(bad):
                report.issues.append(
                    ValidationIssue(
                        int(row), name, float(values[row]),
                        f"outside plausible range [{spec.lo}, {spec.hi}]",
                    )
                )
                if len(report.issues) >= max_issues:
                    return report
        elif spec.categories:
            allowed = set(spec.categories)
            for row, value in enumerate(column.values):
                if value is not None and value not in allowed:
                    report.issues.append(
                        ValidationIssue(row, name, value, "not in the closed vocabulary")
                    )
                    if len(report.issues) >= max_issues:
                        return report
    return report
