"""Data substrate: columnar tables, the EPC schema, synthetic collections.

The paper analyzed the Piedmont EPC open dataset; offline, this package
generates an equivalent synthetic collection (see DESIGN.md, Substitutions)
and provides the columnar :class:`Table` the rest of INDICE runs on.
"""

from .table import Column, ColumnKind, Table, TableError
from .schema import (
    AttributeSpec,
    EpcSchema,
    epc_schema,
    PAPER_CLUSTERING_FEATURES,
    PAPER_RESPONSE,
    GEO_ATTRIBUTES,
    ENERGY_CLASSES,
    BUILDING_TYPES,
)
from .streetmap import AddressRecord, StreetMap, generate_street_map, turin_like_hierarchy
from .synthetic import (
    EpcCollection,
    EraRegime,
    ERA_REGIMES,
    SyntheticConfig,
    generate_epc_collection,
)
from .noise import NoiseConfig, NoiseEvent, NoiseResult, apply_noise
from .io import read_csv, write_csv
from .epc import EpcRecord, ValidationIssue, records, validate_table

__all__ = [
    "Column",
    "ColumnKind",
    "Table",
    "TableError",
    "AttributeSpec",
    "EpcSchema",
    "epc_schema",
    "PAPER_CLUSTERING_FEATURES",
    "PAPER_RESPONSE",
    "GEO_ATTRIBUTES",
    "ENERGY_CLASSES",
    "BUILDING_TYPES",
    "AddressRecord",
    "StreetMap",
    "generate_street_map",
    "turin_like_hierarchy",
    "EpcCollection",
    "EraRegime",
    "ERA_REGIMES",
    "SyntheticConfig",
    "generate_epc_collection",
    "NoiseConfig",
    "NoiseEvent",
    "NoiseResult",
    "apply_noise",
    "read_csv",
    "write_csv",
    "EpcRecord",
    "ValidationIssue",
    "records",
    "validate_table",
]
