"""A lightweight typed columnar table.

INDICE processes collections of Energy Performance Certificates that mix
quantitative, categorical and free-text attributes.  The original system was
built on top of a dataframe library; this module provides the minimal
columnar substrate the rest of the framework needs, implemented on NumPy:

* three column kinds (:class:`ColumnKind`): ``NUMERIC`` (float64, ``NaN`` for
  missing), ``CATEGORICAL`` (small closed vocabularies) and ``TEXT`` (free
  strings such as addresses),
* immutable-style operations (every transformation returns a new
  :class:`Table` sharing column buffers where safe),
* selection, boolean filtering, row take, group-by, sort, and a hash join.

The table is deliberately small: it implements exactly the operations INDICE
uses, with predictable semantics, rather than a general dataframe.
"""

from __future__ import annotations

import enum
import operator
from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Callable

import numpy as np

__all__ = ["ColumnKind", "Column", "Table", "TableError"]


class TableError(Exception):
    """Raised for malformed table operations (unknown column, shape mismatch)."""


class ColumnKind(enum.Enum):
    """The three attribute kinds found in an EPC collection."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    TEXT = "text"


#: Sentinel used for a missing categorical / text value.
MISSING = None


class Column:
    """A single named, typed column.

    Numeric columns are stored as ``float64`` arrays where ``NaN`` marks a
    missing value.  Categorical and text columns are stored as ``object``
    arrays of ``str`` where ``None`` marks a missing value.
    """

    __slots__ = ("name", "kind", "values")

    def __init__(self, name: str, kind: ColumnKind, values: np.ndarray):
        self.name = name
        self.kind = kind
        self.values = values

    # -- constructors -----------------------------------------------------

    @classmethod
    def numeric(cls, name: str, values: Iterable[Any]) -> "Column":
        """Build a numeric column; ``None`` becomes ``NaN``."""
        arr = np.asarray(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
        return cls(name, ColumnKind.NUMERIC, arr)

    @classmethod
    def categorical(cls, name: str, values: Iterable[Any]) -> "Column":
        """Build a categorical column of strings; ``None`` stays missing."""
        arr = np.asarray(
            [None if v is None else str(v) for v in values], dtype=object
        )
        return cls(name, ColumnKind.CATEGORICAL, arr)

    @classmethod
    def text(cls, name: str, values: Iterable[Any]) -> "Column":
        """Build a free-text column of strings; ``None`` stays missing."""
        arr = np.asarray(
            [None if v is None else str(v) for v in values], dtype=object
        )
        return cls(name, ColumnKind.TEXT, arr)

    @classmethod
    def from_kind(cls, name: str, kind: ColumnKind, values: Iterable[Any]) -> "Column":
        """Build a column of the given *kind* from raw values."""
        if kind is ColumnKind.NUMERIC:
            return cls.numeric(name, values)
        if kind is ColumnKind.CATEGORICAL:
            return cls.categorical(name, values)
        return cls.text(name, values)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.kind != other.kind:
            return False
        if self.kind is ColumnKind.NUMERIC:
            a, b = self.values, other.values
            if a.shape != b.shape:
                return False
            both_nan = np.isnan(a) & np.isnan(b)
            return bool(np.all(both_nan | (a == b)))
        return bool(np.array_equal(self.values, other.values))

    def __hash__(self):  # columns are mutable containers
        raise TypeError("Column is unhashable")

    def is_missing(self) -> np.ndarray:
        """Boolean mask of missing entries."""
        if self.kind is ColumnKind.NUMERIC:
            return np.isnan(self.values)
        # element-wise identity against the None singleton; NumPy broadcasts
        # this over object arrays without a per-row Python comprehension
        return np.asarray(self.values == None, dtype=bool)  # noqa: E711

    def non_missing(self) -> np.ndarray:
        """The values with missing entries removed.

        When nothing is missing this returns the column's own buffer
        (treat it as read-only); otherwise a boolean-masked copy.
        """
        mask = self.is_missing()
        if not mask.any():
            return self.values
        return self.values[~mask]

    def take(self, indices: np.ndarray) -> "Column":
        """A new column with rows reordered / subset by *indices*."""
        return Column(self.name, self.kind, self.values[indices])

    def renamed(self, name: str) -> "Column":
        """The same column under a different *name* (shares the buffer)."""
        return Column(name, self.kind, self.values)

    def unique(self) -> list:
        """Sorted distinct non-missing values."""
        vals = self.non_missing()
        if self.kind is ColumnKind.NUMERIC:
            return sorted(set(float(v) for v in vals))
        return sorted(set(vals))


class Table:
    """An ordered collection of equally-long named :class:`Column` objects."""

    def __init__(self, columns: Sequence[Column]):
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise TableError(f"duplicate column names: {names}")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise TableError(f"columns have differing lengths: {sorted(lengths)}")
        self._columns: dict[str, Column] = {c.name: c for c in columns}
        self._n_rows = lengths.pop() if lengths else 0

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_columns(
        cls, data: Mapping[str, Iterable[Any]], kinds: Mapping[str, ColumnKind]
    ) -> "Table":
        """Build a table from ``{name: values}`` plus ``{name: kind}``."""
        missing_kinds = set(data) - set(kinds)
        if missing_kinds:
            raise TableError(f"no kind given for columns: {sorted(missing_kinds)}")
        cols = [Column.from_kind(name, kinds[name], vals) for name, vals in data.items()]
        return cls(cols)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, Any]],
        kinds: Mapping[str, ColumnKind],
        column_order: Sequence[str] | None = None,
    ) -> "Table":
        """Build a table from a list of row dictionaries.

        Missing keys become missing values.  ``column_order`` fixes the
        column order; by default the order of ``kinds`` is used.
        """
        order = list(column_order) if column_order is not None else list(kinds)
        if not order:
            return cls.from_columns({}, kinds)
        try:
            # fast path: one itemgetter pass per row transposes all columns
            # at once instead of one full `row.get` scan per column
            getter = operator.itemgetter(*order)
            if len(order) == 1:
                columns = ([getter(row) for row in rows],)
            else:
                columns = tuple(zip(*(getter(row) for row in rows)))
                if not columns:
                    columns = tuple([] for __ in order)
        except KeyError:
            # some row lacks a key: fall back to get() so it becomes missing
            columns = tuple(
                [row.get(name) for row in rows] for name in order
            )
        data = dict(zip(order, columns))
        return cls.from_columns(data, kinds)

    @classmethod
    def empty(cls) -> "Table":
        """A table with no columns and no rows."""
        return cls([])

    # -- introspection -----------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def column_names(self) -> list[str]:
        """Column names in table order."""
        return list(self._columns)

    def __len__(self) -> int:
        return self._n_rows

    def __eq__(self, other: object) -> bool:
        """Structural equality: same columns in the same order, same values
        (NaN-aware for numeric columns, via :meth:`Column.__eq__`)."""
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(
            self._columns[name] == other._columns[name]
            for name in self._columns
        )

    __hash__ = None  # tables are mutable containers

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:
        return f"Table({self.n_rows} rows x {self.n_columns} columns)"

    def column(self, name: str) -> Column:
        """The column object named *name*."""
        try:
            return self._columns[name]
        except KeyError:
            raise TableError(f"unknown column {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        """The raw value array of column *name*."""
        return self.column(name).values

    def kind(self, name: str) -> ColumnKind:
        """The :class:`ColumnKind` of column *name*."""
        return self.column(name).kind

    def numeric_columns(self) -> list[str]:
        """Names of all numeric columns, in table order."""
        return [n for n, c in self._columns.items() if c.kind is ColumnKind.NUMERIC]

    def categorical_columns(self) -> list[str]:
        """Names of all categorical columns, in table order."""
        return [n for n, c in self._columns.items() if c.kind is ColumnKind.CATEGORICAL]

    def text_columns(self) -> list[str]:
        """Names of all text columns, in table order."""
        return [n for n, c in self._columns.items() if c.kind is ColumnKind.TEXT]

    def row(self, index: int) -> dict[str, Any]:
        """Row *index* as a plain dict (NaN / None for missing)."""
        if not -self._n_rows <= index < self._n_rows:
            raise TableError(f"row index {index} out of range for {self._n_rows} rows")
        return {name: col.values[index] for name, col in self._columns.items()}

    def to_rows(self) -> list[dict[str, Any]]:
        """All rows as dicts (useful for small results and tests)."""
        return [self.row(i) for i in range(self._n_rows)]

    # -- column-level transformations ---------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """A table with only *names*, in the given order."""
        return Table([self.column(n) for n in names])

    def drop(self, names: Sequence[str]) -> "Table":
        """A table without the columns in *names*."""
        doomed = set(names)
        unknown = doomed - set(self._columns)
        if unknown:
            raise TableError(f"unknown columns {sorted(unknown)}")
        return Table([c for n, c in self._columns.items() if n not in doomed])

    def with_column(self, column: Column) -> "Table":
        """A table with *column* appended (or replaced, if the name exists)."""
        if len(column) != self._n_rows and self.n_columns > 0:
            raise TableError(
                f"column {column.name!r} has {len(column)} rows, table has {self._n_rows}"
            )
        cols = [c for n, c in self._columns.items() if n != column.name]
        cols.append(column)
        return Table(cols)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """A table with columns renamed via ``{old: new}``."""
        cols = [
            c.renamed(mapping.get(n, n)) for n, c in self._columns.items()
        ]
        return Table(cols)

    # -- row-level transformations ------------------------------------------

    def where(self, mask: np.ndarray) -> "Table":
        """Rows where the boolean *mask* holds."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n_rows,):
            raise TableError(
                f"mask has shape {mask.shape}, expected ({self._n_rows},)"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: np.ndarray) -> "Table":
        """Rows reordered / subset by integer *indices*."""
        indices = np.asarray(indices, dtype=np.intp)
        return Table([c.take(indices) for c in self._columns.values()])

    def head(self, n: int) -> "Table":
        """The first *n* rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def sort_by(self, name: str, descending: bool = False) -> "Table":
        """Rows sorted by column *name* (missing values last)."""
        col = self.column(name)
        missing = col.is_missing()
        if col.kind is ColumnKind.NUMERIC:
            keys = col.values.copy()
            keys[missing] = np.inf if not descending else -np.inf
            order = np.argsort(keys, kind="stable")
        else:
            decorated = [
                (v is None, "" if v is None else v) for v in col.values
            ]
            order = np.asarray(
                sorted(range(self._n_rows), key=lambda i: decorated[i]), dtype=np.intp
            )
        if descending:
            # keep missing-last even when descending
            present = order[~missing[order]][::-1]
            absent = order[missing[order]]
            order = np.concatenate([present, absent])
        return self.take(order)

    def drop_missing(self, names: Sequence[str] | None = None) -> "Table":
        """Rows that are fully present in *names* (default: all columns)."""
        names = list(names) if names is not None else self.column_names
        keep = np.ones(self._n_rows, dtype=bool)
        for n in names:
            keep &= ~self.column(n).is_missing()
        return self.where(keep)

    # -- grouping and joining -----------------------------------------------

    def group_by(self, name: str) -> dict[Any, "Table"]:
        """Partition rows by the value of column *name*.

        Missing values are grouped under ``None``.  Group keys preserve the
        column's value type (float for numeric, str otherwise).
        """
        col = self.column(name)
        groups: dict[Any, list[int]] = {}
        if col.kind is ColumnKind.NUMERIC:
            keys = [None if np.isnan(v) else float(v) for v in col.values]
        else:
            keys = list(col.values)
        for i, key in enumerate(keys):
            groups.setdefault(key, []).append(i)
        return {
            key: self.take(np.asarray(idx, dtype=np.intp))
            for key, idx in groups.items()
        }

    def group_indices(self, name: str) -> dict[Any, np.ndarray]:
        """Like :meth:`group_by` but returning row indices per key."""
        col = self.column(name)
        groups: dict[Any, list[int]] = {}
        if col.kind is ColumnKind.NUMERIC:
            keys = [None if np.isnan(v) else float(v) for v in col.values]
        else:
            keys = list(col.values)
        for i, key in enumerate(keys):
            groups.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.intp) for k, v in groups.items()}

    def join(self, other: "Table", on: str, how: str = "inner") -> "Table":
        """Hash join with *other* on the shared key column *on*.

        Supports ``how='inner'`` and ``how='left'``.  Columns of *other*
        (except the key) that clash with this table's names get a ``_right``
        suffix.  For a left join, unmatched right columns are missing.
        """
        if how not in ("inner", "left"):
            raise TableError(f"unsupported join type {how!r}")
        right_key = other.column(on)
        index: dict[Any, list[int]] = {}
        for j, v in enumerate(right_key.values):
            if v is None or (right_key.kind is ColumnKind.NUMERIC and np.isnan(v)):
                continue
            index.setdefault(v, []).append(j)

        left_key = self.column(on)
        left_rows: list[int] = []
        right_rows: list[int | None] = []
        for i, v in enumerate(left_key.values):
            matches = index.get(v, [])
            if matches:
                for j in matches:
                    left_rows.append(i)
                    right_rows.append(j)
            elif how == "left":
                left_rows.append(i)
                right_rows.append(None)

        left_idx = np.asarray(left_rows, dtype=np.intp)
        out_cols = [c.take(left_idx) for c in self._columns.values()]
        taken_names = {c.name for c in out_cols}
        for name, col in other._columns.items():
            if name == on:
                continue
            out_name = name if name not in taken_names else f"{name}_right"
            values = [
                None if j is None else col.values[j] for j in right_rows
            ]
            out_cols.append(Column.from_kind(out_name, col.kind, values))
        return Table(out_cols)

    # -- aggregation helpers --------------------------------------------------

    def aggregate(
        self, by: str, name: str, func: Callable[[np.ndarray], float]
    ) -> dict[Any, float]:
        """Apply *func* to the non-missing values of *name* within each
        group of *by*.  Empty groups map to ``nan``."""
        col = self.column(name)
        if col.kind is not ColumnKind.NUMERIC:
            raise TableError(f"aggregate expects a numeric column, got {name!r}")
        out: dict[Any, float] = {}
        for key, idx in self.group_indices(by).items():
            vals = col.values[idx]
            vals = vals[~np.isnan(vals)]
            out[key] = float(func(vals)) if len(vals) else float("nan")
        return out

    def vstack(self, other: "Table") -> "Table":
        """Concatenate rows of two tables with identical schemas."""
        if self.column_names != other.column_names:
            raise TableError("vstack requires identical column names and order")
        cols = []
        for name in self.column_names:
            a, b = self.column(name), other.column(name)
            if a.kind is not b.kind:
                raise TableError(f"column {name!r} kind mismatch in vstack")
            cols.append(Column(name, a.kind, np.concatenate([a.values, b.values])))
        return Table(cols)

    # -- numeric matrix view ----------------------------------------------------

    def to_matrix(self, names: Sequence[str]) -> np.ndarray:
        """The numeric columns *names* stacked into an ``(n_rows, k)`` float
        matrix (missing values stay ``NaN``)."""
        arrays = []
        for n in names:
            col = self.column(n)
            if col.kind is not ColumnKind.NUMERIC:
                raise TableError(f"to_matrix expects numeric columns, got {n!r}")
            arrays.append(col.values)
        if not arrays:
            return np.empty((self._n_rows, 0), dtype=np.float64)
        return np.column_stack(arrays)
