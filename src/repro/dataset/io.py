"""CSV input/output for :class:`~repro.dataset.table.Table`.

EPC collections are distributed as CSV open data, so the framework can
round-trip a table to disk.  The writer emits a standard RFC-4180 CSV; the
reader either takes explicit column kinds (e.g. from the EPC schema) or
infers them: a column whose non-empty values all parse as floats is numeric,
anything else is categorical (use ``text_columns`` to force free-text kind).

Missing values are written as empty fields and read back as missing.

Both functions carry an injection hook (the ``dataset.read`` /
``dataset.write`` fault sites) so the chaos harness can simulate an
unreadable open-data dump or a full disk; an injected fault surfaces as
:class:`~repro.faults.plan.InjectedIOError` (an ``OSError``), exactly
like the real failure it stands in for, so callers recover with the same
``retry_with_backoff`` they would use in production.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..faults.plan import DATASET_READ, DATASET_WRITE, FaultInjector
from .table import Column, ColumnKind, Table

__all__ = ["write_csv", "read_csv"]


def write_csv(
    table: Table, path: str | Path, injector: FaultInjector | None = None
) -> None:
    """Write *table* to *path* with a header row.

    Numeric missing (NaN) and categorical missing (None) both become empty
    fields.  Floats that are whole numbers are written without a trailing
    ``.0`` only when the column holds integers exclusively, keeping output
    stable for identifier-like columns.
    """
    if injector is not None:
        injector.fire(DATASET_WRITE)
    path = Path(path)
    names = table.column_names
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [table.column(n) for n in names]
        rendered: list[list[str]] = []
        for col in columns:
            if col.kind is ColumnKind.NUMERIC:
                values = col.values
                present = values[~np.isnan(values)]
                integral = len(present) > 0 and np.all(present == np.floor(present))
                cells = [
                    "" if np.isnan(v) else (str(int(v)) if integral else repr(float(v)))
                    for v in values
                ]
            else:
                cells = ["" if v is None else str(v) for v in col.values]
            rendered.append(cells)
        for row in zip(*rendered):
            writer.writerow(row)


def _infer_kind(values: list[str]) -> ColumnKind:
    """NUMERIC when every non-empty cell parses as a float, else CATEGORICAL."""
    saw_value = False
    for v in values:
        if v == "":
            continue
        saw_value = True
        try:
            float(v)
        except ValueError:
            return ColumnKind.CATEGORICAL
    return ColumnKind.NUMERIC if saw_value else ColumnKind.CATEGORICAL


def read_csv(
    path: str | Path,
    kinds: dict[str, ColumnKind] | None = None,
    text_columns: tuple[str, ...] = (),
    injector: FaultInjector | None = None,
) -> Table:
    """Read a CSV written by :func:`write_csv` (or any headered CSV).

    ``kinds`` overrides inference per column; ``text_columns`` forces the
    TEXT kind for the named columns (inference cannot distinguish free text
    from categorical).
    """
    if injector is not None:
        injector.fire(DATASET_READ)
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return Table.empty()
        raw_rows = list(reader)

    columns: list[Column] = []
    for j, name in enumerate(header):
        cells = [row[j] if j < len(row) else "" for row in raw_rows]
        if kinds and name in kinds:
            kind = kinds[name]
        elif name in text_columns:
            kind = ColumnKind.TEXT
        else:
            kind = _infer_kind(cells)
        if kind is ColumnKind.NUMERIC:
            values = [None if c == "" else float(c) for c in cells]
        else:
            values = [None if c == "" else c for c in cells]
        columns.append(Column.from_kind(name, kind, values))
    return Table(columns)
