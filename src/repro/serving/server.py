"""The multi-worker artifact server: pooled threads over immutable bytes.

:class:`ArtifactServer` is the HTTP face of an :class:`ArtifactStore`.
Its request path (:meth:`ArtifactServer.respond`) is a pure-ish function
from ``(method, path, headers)`` to a :class:`Response`, so the whole
caching / shedding / error surface is testable without sockets; the
socket layer is :class:`PooledHTTPServer`, a stdlib ``HTTPServer`` whose
accepted connections are drained by a **fixed pool of worker threads**
(the ``--workers`` knob) instead of one thread per connection.

Request lifecycle:

1. **admission** — an in-flight slot is acquired under a short
   :class:`~repro.faults.policy.Deadline`; when ``max_inflight``
   requests are already being served the deadline expires and the
   request is shed with ``503 + Retry-After`` instead of queueing
   without bound (the serving twin of the pipeline's load shedding);
2. **routing** — :func:`repro.serve.normalize_path` applies the shared
   hostile-path policy (400), unknown routes 404;
3. **artifact** — the store returns the immutable payload, rendering it
   once under the single-flight lock if cold; any rendering failure
   (injected or real) becomes a per-request 500 page, never a traceback;
4. **representation** — strong ``ETag`` vs ``If-None-Match`` (304),
   gzip when the client accepts it, ``Cache-Control`` on everything.

**Graceful reload**: each request reads ``self._store`` exactly once, so
:meth:`reload` swapping the attribute is atomic — in-flight requests
finish on the store they started with while new requests see the new
analysis version.
"""

from __future__ import annotations

import json
import queue
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, HTTPServer

from ..checks import lockdep as _lockdep
from ..core.engine import Indice
from ..faults.policy import Deadline
from ..serve import _error_page, normalize_path, write_payload
from .store import ArtifactStore, build_store

__all__ = ["ArtifactServer", "PooledHTTPServer", "Response"]

#: Artifacts are immutable per analysis version but live at stable URLs,
#: so clients must revalidate — which the strong ETags make a cheap 304.
_REVALIDATE = "public, no-cache"
#: Error pages and health probes must never be cached.
_NO_STORE = "no-store"


@dataclass(frozen=True)
class Response:
    """One HTTP response, socket-free."""

    status: int
    content_type: str
    body: bytes
    headers: tuple[tuple[str, str], ...] = ()

    def header(self, name: str) -> str | None:
        """The first header named *name* (case-insensitive), or None."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None


def _page(status: int, title: str, message: str,
          headers: tuple[tuple[str, str], ...] = ()) -> Response:
    """An HTML error page as a :class:`Response` (never cached)."""
    status, content_type, body = _error_page(status, title, message)
    return Response(
        status, content_type, body.encode("utf-8"),
        (("Cache-Control", _NO_STORE),) + headers,
    )


def _etag_matches(header_value: str, etag: str) -> bool:
    """RFC 7232 ``If-None-Match``: ``*`` or any listed (weak) validator."""
    if header_value.strip() == "*":
        return True
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


class ArtifactServer:
    """Serves an :class:`ArtifactStore` with caching, shedding and reload.

    Parameters
    ----------
    store:
        The artifact store to serve.  Build one from an analyzed engine
        with :func:`~repro.serving.store.build_store` (or use
        :meth:`for_engine`).
    max_inflight:
        Requests allowed in flight at once; arrivals beyond it wait out
        ``shed_after_s`` and are then shed with ``503 + Retry-After``.
    shed_after_s:
        The admission :class:`Deadline` budget — how long an arrival may
        wait for a slot before it is shed.
    lockdep:
        Optional :class:`~repro.checks.lockdep.LockDep` sanitizer; when
        omitted, the shared default is used if ``REPRO_SANITIZE_LOCKS``
        is on, else the primitives stay raw (zero overhead).
    """

    def __init__(
        self,
        store: ArtifactStore,
        *,
        max_inflight: int = 64,
        shed_after_s: float = 0.05,
        lockdep: "_lockdep.LockDep | None" = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self._store = store
        self.max_inflight = max_inflight
        self.shed_after_s = shed_after_s
        dep = _lockdep.resolve(lockdep)
        self._slots = _lockdep.wrap(
            threading.BoundedSemaphore(max_inflight), "server.slots", dep
        )
        self._stats_lock = _lockdep.wrap(
            threading.Lock(), "server.stats", dep
        )
        self._inflight = 0
        self.stats = {
            "requests": 0,
            "shed": 0,
            "not_modified": 0,
            "errors": 0,
            "reloads": 0,
        }

    @classmethod
    def for_engine(cls, engine: Indice, **kwargs) -> "ArtifactServer":
        """An artifact server over a freshly built store for *engine*."""
        return cls(build_store(engine), **kwargs)

    # -- store access and graceful reload -----------------------------------

    @property
    def store(self) -> ArtifactStore:
        """The store new requests will be served from."""
        return self._store

    @property
    def inflight(self) -> int:
        """Requests currently holding an admission slot."""
        with self._stats_lock:
            return self._inflight

    def reload(self, store: ArtifactStore) -> str:
        """Atomically swap in *store*; returns the new version.

        Requests already in flight finish against the store they read at
        admission; every later request sees the new artifacts.  Nothing
        is torn down — the old store is garbage once its last in-flight
        reader returns.
        """
        self._store = store
        self._count("reloads")
        return store.version

    def reload_from(self, engine: Indice) -> str:
        """Build a store from a (re-)analyzed engine and swap it in."""
        return self.reload(build_store(engine))

    # -- the socket-free request path ----------------------------------------

    def respond(
        self,
        method: str,
        raw_path: str,
        headers: dict[str, str] | None = None,
    ) -> Response:
        """Serve one request; total — never raises, always a Response."""
        lowered = {
            key.lower(): value for key, value in (headers or {}).items()
        }
        self._count("requests")
        deadline = Deadline(self.shed_after_s)
        if not self._slots.acquire(timeout=deadline.remaining()):
            self._count("shed")
            return _page(
                503, "server saturated",
                f"more than {self.max_inflight} requests are in flight; "
                "retry shortly",
                headers=(("Retry-After", "1"),),
            )
        with self._stats_lock:
            self._inflight += 1
        try:
            return self._respond(method, raw_path, lowered)
        finally:
            with self._stats_lock:
                self._inflight -= 1
            self._slots.release()

    def _respond(
        self, method: str, raw_path: str, headers: dict[str, str]
    ) -> Response:
        # one read: this request is pinned to whatever store is current
        store = self._store
        path = normalize_path(raw_path)
        if path is None:
            return _page(
                400, "malformed path",
                "the request path could not be understood",
            )
        if path == "/healthz":
            return self._healthz(store)
        try:
            artifact = store.get(path)
        except KeyError:
            return _page(404, "not found", f"no route for {path!r}")
        # The per-request 500 page is the serving tier's totality contract:
        # a failed (or fault-injected) render must cost exactly one request
        # and never leak a traceback or wedge the single-flight lock.
        except Exception as exc:  # repro: noqa[EXC001] — catch-all 500, no tracebacks out
            self._count("errors")
            return _page(
                500, "internal error",
                f"the server failed to render this page "
                f"({type(exc).__name__}); retrying is safe",
            )

        base_headers = (
            ("ETag", artifact.etag),
            ("Cache-Control", _REVALIDATE),
            ("X-Analysis-Version", store.version),
            ("Vary", "Accept-Encoding"),
        )
        if_none_match = headers.get("if-none-match")
        if if_none_match and _etag_matches(if_none_match, artifact.etag):
            self._count("not_modified")
            return Response(304, artifact.content_type, b"", base_headers)
        body = artifact.body
        if "gzip" in headers.get("accept-encoding", ""):
            body = artifact.gzipped
            base_headers += (("Content-Encoding", "gzip"),)
        return Response(200, artifact.content_type, body, base_headers)

    def _healthz(self, store: ArtifactStore) -> Response:
        """Liveness + version probe (dynamic: never an artifact)."""
        with self._stats_lock:
            snapshot = dict(self.stats)
            snapshot["inflight"] = self._inflight
        payload = {
            "status": "ok",
            "version": store.version,
            "artifacts": len(store.paths()),
            "rendered": store.total_renders,
            **snapshot,
        }
        return Response(
            200, "application/json",
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            (("Cache-Control", _NO_STORE),),
        )

    def _count(self, key: str) -> None:
        with self._stats_lock:
            self.stats[key] += 1

    # -- socket layer --------------------------------------------------------

    def _handler_class(self, quiet: bool) -> type[BaseHTTPRequestHandler]:
        artifact_server = self

        class Handler(_ArtifactRequestHandler):
            server_ref = artifact_server
            log_requests = not quiet

        return Handler

    @contextmanager
    def serving(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 8,
        quiet: bool = True,
    ):
        """Run the pooled server in the background; yields ``(httpd, url)``.

        The test-harness entry point: binds an ephemeral port by default
        and guarantees shutdown (worker pool included) on exit.
        """
        httpd = PooledHTTPServer(
            (host, port), self._handler_class(quiet), workers=workers
        )
        thread = threading.Thread(
            target=httpd.serve_forever, name="indice-acceptor", daemon=True
        )
        thread.start()
        try:
            yield httpd, f"http://{host}:{httpd.server_address[1]}"
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5.0)

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 8350,
        workers: int = 8,
    ) -> None:
        """Serve forever (Ctrl-C to stop)."""
        with PooledHTTPServer(
            (host, port), self._handler_class(quiet=False), workers=workers
        ) as httpd:
            print(
                f"INDICE artifact server at http://{host}:{port}/ — "
                f"{workers} workers, max {self.max_inflight} in flight, "
                f"analysis version {self._store.version} (Ctrl-C to stop)"
            )
            httpd.serve_forever()


class _ArtifactRequestHandler(BaseHTTPRequestHandler):
    """GET/HEAD plumbing between one socket and an :class:`ArtifactServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "indice-serving"
    #: Bound by :meth:`ArtifactServer._handler_class`.
    server_ref: ArtifactServer
    log_requests = True

    def do_GET(self):  # noqa: N802 (http.server API)
        """Serve a GET: full response, headers and body."""
        self._handle(include_body=True)

    def do_HEAD(self):  # noqa: N802 (http.server API)
        """Serve a HEAD: the GET's status line and headers, body withheld."""
        self._handle(include_body=False)

    def _handle(self, include_body: bool) -> None:
        response = self.server_ref.respond(
            self.command, self.path, dict(self.headers.items())
        )
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            for name, value in response.headers:
                self.send_header(name, value)
            if response.status != 304:
                # HEAD advertises the same length the GET would carry
                self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
            return
        if include_body and response.status != 304 and response.body:
            if not write_payload(self.wfile, response.body):
                self.close_connection = True

    def log_message(self, fmt, *args):
        """Access log line (suppressed when the server runs quiet)."""
        if self.log_requests:
            print(f"[indice] {self.address_string()} {fmt % args}")


class PooledHTTPServer(HTTPServer):
    """An ``HTTPServer`` whose connections are handled by a fixed pool.

    ``ThreadingHTTPServer`` spawns one thread per connection — unbounded
    under load.  This server keeps the stdlib accept loop but hands each
    accepted connection to one of ``workers`` long-lived worker threads
    through a queue, so concurrency is capped by configuration and a
    connection storm degrades to queueing (and, past ``max_inflight``,
    to shedding) instead of thread exhaustion.
    """

    #: Workers are daemons: a hung handler never blocks interpreter exit.
    daemon_threads = True
    #: The stdlib default backlog of 5 drops SYNs under a connection
    #: storm; the accept loop drains fast (accept + enqueue only), so a
    #: deep backlog just smooths the burst into the queue.
    request_queue_size = 128

    def __init__(self, server_address, handler_class, workers: int = 8):
        super().__init__(server_address, handler_class)
        self.workers = max(1, workers)
        self._connections: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"indice-worker-{index}", daemon=True
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    def process_request(self, request, client_address):
        """Accept loop: enqueue the connection for the worker pool."""
        self._connections.put((request, client_address))

    def _drain(self) -> None:
        """One worker: serve queued connections until told to stop."""
        while True:
            item = self._connections.get()
            if item is None:
                return
            request, client_address = item
            try:
                self.finish_request(request, client_address)
            # socketserver contract: a handler failure is reported via
            # handle_error and the worker lives on to serve the next
            # connection — one bad socket must not kill the pool.
            except Exception:  # repro: noqa[EXC001] — reported via handle_error, worker survives
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)

    def server_close(self) -> None:
        """Close the listening socket, then stop and join the pool."""
        super().server_close()
        for __ in self._threads:
            self._connections.put(None)
        for thread in self._threads:
            thread.join(timeout=1.0)
