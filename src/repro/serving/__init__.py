"""The production serving tier: immutable artifacts behind a thread pool.

``repro.serve`` is the development surface — one process, lazy rendering,
no caching headers.  This package is what the ROADMAP calls the
production serving tier, built from three pieces:

* :mod:`repro.serving.store` — an **immutable artifact store**.  Every
  dashboard, the report and the GeoJSON layers are rendered at most once
  per *analysis version* (:meth:`~repro.core.engine.Indice.analysis_version`)
  into content-addressed bytes with strong ETags and pre-compressed gzip
  twins.  Cold hits are **coalesced**: N concurrent requests for the same
  un-rendered artifact trigger exactly one render (a single-flight lock
  per key) while the other N-1 wait for the bytes.
* :mod:`repro.serving.server` — a **multi-worker HTTP server** over the
  store: a fixed pool of handler threads (``--workers``), conditional
  GETs (``If-None-Match`` → 304), ``Cache-Control``, gzip negotiation,
  HEAD, and **load shedding** — when more than ``--max-inflight``
  requests are in flight, new arrivals wait out a short
  :class:`~repro.faults.policy.Deadline` and are then shed with
  ``503 + Retry-After`` instead of queueing without bound.
* **graceful reload** — :meth:`ArtifactServer.reload` swaps the store
  atomically; requests already in flight finish against the store they
  started on, new requests see the new analysis version immediately.

Failures are part of the surface: the store's render path is a registered
fault site (``serve.request``), so chaos plans can make renders fail and
the harness can prove that a burst of failing renders yields per-request
500 pages — never a traceback, never a wedged single-flight lock.
"""

from .server import ArtifactServer, PooledHTTPServer, Response
from .store import (
    Artifact,
    ArtifactStore,
    build_store,
    render_points_geojson,
)

__all__ = [
    "Artifact",
    "ArtifactServer",
    "ArtifactStore",
    "PooledHTTPServer",
    "Response",
    "build_store",
    "render_points_geojson",
]
