"""The immutable, content-addressed artifact store.

An :class:`ArtifactStore` maps route paths to pre-renderable byte
payloads.  Renderers are registered at construction; each one runs at
most once per store (and therefore once per analysis version, since a
new analysis builds a new store) under a per-key single-flight lock:

* a **warm** hit returns the immutable :class:`Artifact` with zero
  locking — a dict read;
* N concurrent **cold** hits on the same key coalesce: one caller
  renders while the other N-1 block on the key's lock and then read the
  freshly published artifact;
* a **failed** render publishes nothing and releases the lock, so the
  next request simply retries — an injected or real rendering failure
  can never wedge the key.

Artifacts are content-addressed: the strong ``ETag`` is the SHA-256 of
the body, and the gzip twin is compressed with ``mtime=0`` so two
workers (or two runs) always produce bit-identical bytes for the same
analysis version.

The render path is a registered fault site (``serve.request``): an
injector attached to the store decides, deterministically, which render
attempts fail — which is how the chaos harness drives concurrent bursts
of 500s through the server without patching anything.
"""

from __future__ import annotations

import gzip
import hashlib
import math
import threading
from dataclasses import dataclass, field
from typing import Callable

from ..checks import effectaudit as _effectaudit
from ..checks import lockdep as _lockdep
from ..core.engine import Indice
from ..faults.plan import SERVE_REQUEST, FaultInjector
from ..geo import geojson
from ..query.stakeholders import Stakeholder
from ..serve import _HTML, render_dashboard, render_index, render_report

__all__ = [
    "Artifact",
    "ArtifactStore",
    "build_store",
    "render_points_geojson",
]

_GEOJSON = "application/geo+json"


@dataclass(frozen=True)
class Artifact:
    """One immutable, pre-rendered response payload."""

    path: str
    content_type: str
    body: bytes
    #: Strong validator: quoted SHA-256 of the body.
    etag: str
    #: The gzip twin (``mtime=0``: byte-stable across workers and runs).
    gzipped: bytes = field(repr=False)

    @classmethod
    def build(cls, path: str, content_type: str, payload: str | bytes) -> "Artifact":
        """Freeze *payload* into an artifact (etag + gzip computed here)."""
        body = payload.encode("utf-8") if isinstance(payload, str) else payload
        etag = f'"{hashlib.sha256(body).hexdigest()}"'
        return cls(path, content_type, body, etag, gzip.compress(body, mtime=0))


class ArtifactStore:
    """Immutable artifacts for one analysis version, rendered single-flight.

    Parameters
    ----------
    version:
        The analysis version the artifacts belong to (any stable string;
        engines supply :meth:`~repro.core.engine.Indice.analysis_version`).
    renderers:
        ``{path: (content_type, thunk)}`` — each thunk returns the
        artifact payload (``str`` or ``bytes``) and runs at most once.
    injector:
        Optional fault injector; each render *attempt* announces one
        arrival at the ``serve.request`` site and propagates the injected
        exception instead of rendering.
    lockdep:
        Optional :class:`~repro.checks.lockdep.LockDep` sanitizer; when
        omitted, the shared default is used if ``REPRO_SANITIZE_LOCKS``
        is on, else the locks stay raw primitives (zero overhead).
    """

    def __init__(
        self,
        version: str,
        renderers: dict[str, tuple[str, Callable[[], str | bytes]]],
        injector: FaultInjector | None = None,
        lockdep: "_lockdep.LockDep | None" = None,
        effectaudit: "_effectaudit.EffectAudit | None" = None,
    ):
        self.version = version
        self._renderers = dict(renderers)
        self._injector = injector
        self._lockdep = _lockdep.resolve(lockdep)
        self._effectaudit = _effectaudit.resolve(effectaudit)
        self._artifacts: dict[str, Artifact] = {}
        self._render_counts: dict[str, int] = {}
        self._locks: dict[str, threading.Lock] = {}
        self._meta = _lockdep.wrap(threading.Lock(), "store.meta", self._lockdep)
        #: Render attempts, including ones an injected fault aborted.
        self.render_attempts = 0

    # -- introspection ------------------------------------------------------

    def paths(self) -> tuple[str, ...]:
        """Every route the store can serve, sorted."""
        return tuple(sorted(self._renderers))

    def __contains__(self, path: str) -> bool:
        return path in self._renderers

    def render_count(self, path: str) -> int:
        """How many times *path* was actually (successfully) rendered."""
        return self._render_counts.get(path, 0)

    @property
    def total_renders(self) -> int:
        """Successful renders across all paths."""
        return sum(self._render_counts.values())

    # -- the single-flight render path --------------------------------------

    def _lock_for(self, path: str) -> threading.Lock:
        with self._meta:
            lock = self._locks.get(path)
            if lock is None:
                lock = self._locks[path] = _lockdep.wrap(
                    threading.Lock(), f"store.key:{path}", self._lockdep
                )
            return lock

    def get(self, path: str) -> Artifact:
        """The artifact for *path*, rendering it (once) if cold.

        Raises ``KeyError`` for unregistered paths; re-raises whatever a
        failing renderer (or an injected ``serve.request`` fault) raised,
        caching nothing, so the next caller retries cleanly.
        """
        artifact = self._artifacts.get(path)
        if artifact is not None:
            return artifact
        try:
            content_type, render = self._renderers[path]
        except KeyError:
            raise KeyError(path) from None
        lock = self._lock_for(path)
        with lock:
            # coalesced: another request rendered while we waited
            artifact = self._artifacts.get(path)
            if artifact is not None:
                return artifact
            with self._meta:
                self.render_attempts += 1
            if self._injector is not None:
                self._injector.fire(SERVE_REQUEST)
            # The render under the key lock IS the single-flight design:
            # N cold hits coalesce into one render, and only same-key
            # requests (which need this payload anyway) ever wait on it;
            # warm hits never touch the lock.
            with _effectaudit.region(self._effectaudit, f"render:{path}"):
                payload = render()  # repro: noqa[LOCK004] — sanctioned coalescing render
            artifact = Artifact.build(path, content_type, payload)
            with self._meta:
                self._render_counts[path] = self._render_counts.get(path, 0) + 1
            self._artifacts[path] = artifact
            return artifact

    def prerender(self) -> int:
        """Render every registered artifact; the number of routes."""
        for path in self.paths():
            self.get(path)
        return len(self._renderers)


# -- engine-backed renderers --------------------------------------------------


def render_points_geojson(engine: Indice) -> str:
    """The analyzed certificates as a GeoJSON FeatureCollection.

    One Point feature per located certificate carrying the response value
    and the analytic cluster — the machine-readable twin of the scatter
    map, consumable by any GIS tool.
    """
    analytics = engine._require_analyzed()
    table = analytics.table
    response_name = engine.config.response
    lat = table["latitude"]
    lon = table["longitude"]
    response = table[response_name]
    clusters = table["cluster"]
    features = []
    for i in range(table.n_rows):
        if math.isnan(lat[i]) or math.isnan(lon[i]):  # unlocated
            continue
        value = None if math.isnan(response[i]) else float(response[i])
        features.append(
            geojson.point_feature(
                float(lat[i]), float(lon[i]),
                {response_name: value, "cluster": clusters[i]},
            )
        )
    return geojson.dumps(geojson.feature_collection(features))


def build_store(
    engine: Indice,
    injector: FaultInjector | None = None,
    lockdep: "_lockdep.LockDep | None" = None,
) -> ArtifactStore:
    """The artifact store of one analyzed engine.

    Registers every route of the serving surface — the index, the three
    stakeholder dashboards, the report and the GeoJSON point layer —
    against the engine's current :meth:`analysis_version`.  The engine
    must be analyzed (the version hook raises otherwise): a store is a
    snapshot of one finished analysis, never a half-warm deployment.

    When *injector* is omitted the engine's own injector is used, so a
    ``--fault-plan`` naming ``serve.request`` reaches the render path
    with no extra wiring.
    """
    version = engine.analysis_version()
    renderers: dict[str, tuple[str, Callable[[], str | bytes]]] = {
        "/": (_HTML, lambda: render_index(engine)),
        "/report": (_HTML, lambda: render_report(engine)),
        "/geojson/points": (_GEOJSON, lambda: render_points_geojson(engine)),
    }
    for stakeholder in Stakeholder:
        renderers[f"/dashboard/{stakeholder.value}"] = (
            _HTML,
            lambda s=stakeholder: render_dashboard(engine, s),
        )
    return ArtifactStore(
        version,
        renderers,
        injector=injector if injector is not None else engine.injector,
        lockdep=lockdep,
    )
