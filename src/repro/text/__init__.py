"""Text substrate: Levenshtein similarity and address normalization."""

from .levenshtein import best_match, distance, distance_within, similarity
from .normalize import (
    ABBREVIATIONS,
    canonical_house_number,
    expand_abbreviations,
    normalize_address,
    split_house_number,
    strip_accents,
)

__all__ = [
    "best_match",
    "distance",
    "distance_within",
    "similarity",
    "ABBREVIATIONS",
    "canonical_house_number",
    "expand_abbreviations",
    "normalize_address",
    "split_house_number",
    "strip_accents",
]
