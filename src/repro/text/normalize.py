"""Normalization of Italian street addresses.

Address fields in EPC collections are free text typed by certifiers (paper,
Section 2.1.1): they mix abbreviations (``C.SO`` / ``CORSO``), accents,
case, punctuation and token order.  Comparing raw strings with Levenshtein
distance would punish these harmless variations as heavily as real typos, so
INDICE canonicalizes both the EPC addresses and the referenced street map
before matching.

Normalization is deliberately conservative: it never tries to *fix* typos
(that is the matcher's job) — it only removes representational noise.
"""

from __future__ import annotations

import re
import unicodedata
from functools import lru_cache

__all__ = [
    "normalize_address",
    "expand_abbreviations",
    "strip_accents",
    "split_house_number",
    "ABBREVIATIONS",
]

#: Common Italian odonym abbreviations -> canonical form.
ABBREVIATIONS = {
    "c.so": "corso",
    "cso": "corso",
    "c.so.": "corso",
    "v.": "via",
    "v.le": "viale",
    "vle": "viale",
    "p.za": "piazza",
    "p.zza": "piazza",
    "pza": "piazza",
    "pzza": "piazza",
    "p.le": "piazzale",
    "ple": "piazzale",
    "l.go": "largo",
    "lgo": "largo",
    "str.": "strada",
    "str": "strada",
    "vic.": "vicolo",
    "vic": "vicolo",
    "b.go": "borgo",
    "bgo": "borgo",
    "s.": "san",
    "s.ta": "santa",
    "s.to": "santo",
    "ss.": "santi",
    "f.lli": "fratelli",
    "gen.": "generale",
    "cav.": "cavaliere",
    "ing.": "ingegnere",
    "dott.": "dottore",
    "prof.": "professore",
}

_PUNCT_RE = re.compile(r"[,;:/\\\-_'\"()]+")
_SPACES_RE = re.compile(r"\s+")
_HOUSE_NUMBER_RE = re.compile(r"^(\d+)\s*(?:(bis|ter|quater)|([a-z]))?$", re.IGNORECASE)
_TRAILING_NUMBER_RE = re.compile(
    r"[\s,]+(?:n\.?|n°|civ\.?|civico)?\s*(\d+\s*(?:bis|ter|quater|[a-z])?)\s*$",
    re.IGNORECASE,
)


def strip_accents(text: str) -> str:
    """Remove diacritics: ``'Nizza Millefonti è' -> 'Nizza Millefonti e'``."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def expand_abbreviations(text: str) -> str:
    """Expand known odonym abbreviations token by token (input lowercase)."""
    tokens = text.split()
    return " ".join(ABBREVIATIONS.get(tok, tok) for tok in tokens)


@lru_cache(maxsize=65536)
def _normalize_cached(text: str) -> str:
    """The (pure) normalization pipeline behind :func:`normalize_address`.

    Address strings repeat heavily across EPC certificates, so the cache
    turns the regex/unicode work into a dictionary lookup on the hot path.
    """
    out = strip_accents(text).lower().strip()
    # expand dotted abbreviations before stripping punctuation
    out = expand_abbreviations(out)
    out = _PUNCT_RE.sub(" ", out)
    out = expand_abbreviations(out)  # catch forms exposed by punctuation removal
    out = _SPACES_RE.sub(" ", out).strip()
    return out


def normalize_address(text: str | None) -> str:
    """Canonical form of a street address.

    Lowercases, strips accents, expands abbreviations, removes punctuation
    and squeezes whitespace.  Returns ``""`` for missing input.  Results
    are memoized (addresses repeat heavily across certificates).

    >>> normalize_address("C.SO Duca degli Abruzzi")
    'corso duca degli abruzzi'
    """
    if not text:
        return ""
    return _normalize_cached(text)


def split_house_number(address: str) -> tuple[str, str | None]:
    """Split a trailing civic number off a free-text address.

    Returns ``(street_part, house_number_or_None)``.  Handles the common
    Italian forms ``"via roma 12"``, ``"via roma, 12bis"``, ``"via roma n. 12"``.

    >>> split_house_number("via roma, 12 bis")
    ('via roma', '12bis')
    """
    m = _TRAILING_NUMBER_RE.search(address)
    if not m:
        return address.strip(" ,"), None
    street = address[: m.start()].strip(" ,")
    number = re.sub(r"\s+", "", m.group(1)).lower()
    return street, number


def canonical_house_number(raw: str | None) -> str | None:
    """Canonical civic number: digits plus an optional lowercase suffix.

    ``'12 BIS' -> '12bis'``; returns ``None`` when *raw* has no leading digits.
    """
    if not raw:
        return None
    compact = re.sub(r"\s+", "", str(raw)).lower().strip()
    m = _HOUSE_NUMBER_RE.match(compact)
    if not m:
        digits = re.match(r"^(\d+)", compact)
        return digits.group(1) if digits else None
    number, word_suffix, letter_suffix = m.groups()
    suffix = word_suffix or letter_suffix or ""
    return f"{number}{suffix}"
