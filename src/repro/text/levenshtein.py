"""Levenshtein edit distance and the similarity score used by INDICE.

The geospatial cleaning step (paper, Section 2.1.1) compares each address in
the EPC collection against a referenced street map.  For each pair of
addresses the Levenshtein distance [19] counts the minimum number of
single-character insertions, deletions and substitutions turning one string
into the other; the *similarity* derived from it "takes values in the range
[0-1], where 0 indicates total dissimilarity and 1 equality".

We normalize by the longer string's length::

    similarity(a, b) = 1 - distance(a, b) / max(len(a), len(b))

which satisfies exactly that contract (1 iff the strings are equal, 0 iff
they share no aligned characters at all).

The implementation is a two-row dynamic program with an optional cut-off
band: when the caller only cares whether the similarity clears a threshold
``phi`` (the INDICE acceptance test), rows whose minimum already exceeds the
implied distance budget abort early.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "distance",
    "similarity",
    "distance_within",
    "best_match",
    "GazetteerIndex",
]


def distance(a: str, b: str) -> int:
    """The Levenshtein edit distance between *a* and *b*.

    >>> distance("corso duca", "corso duca")
    0
    >>> distance("via roma", "via rome")
    1
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):  # keep the inner loop over the longer string
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,       # deletion
                current[j - 1] + 1,    # insertion
                previous[j - 1] + cost,  # substitution
            )
        previous, current = current, previous
    return previous[len(b)]


def distance_within(a: str, b: str, budget: int) -> int | None:
    """The edit distance if it does not exceed *budget*, else ``None``.

    A length-difference pre-check and an early-abort row scan make this much
    cheaper than :func:`distance` when most candidates are far away, which is
    the common case when scanning a street gazetteer.
    """
    if budget < 0:
        return None
    if a == b:
        return 0
    if abs(len(a) - len(b)) > budget:
        return None
    if not a or not b:
        d = max(len(a), len(b))
        return d if d <= budget else None
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        row_min = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
            if current[j] < row_min:
                row_min = current[j]
        if row_min > budget:
            return None
        previous, current = current, previous
    d = previous[len(b)]
    return d if d <= budget else None


def similarity(a: str, b: str) -> float:
    """Levenshtein similarity in [0, 1]; 1 means equality.

    >>> similarity("via roma", "via roma")
    1.0
    >>> similarity("abc", "xyz")
    0.0
    """
    if a == b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - distance(a, b) / longest


def _distance_budget(a: str, b: str, phi: float) -> int:
    """The largest edit distance for which similarity(a, b) >= phi."""
    longest = max(len(a), len(b))
    return int((1.0 - phi) * longest + 1e-9)


def similarity_at_least(a: str, b: str, phi: float) -> float | None:
    """The similarity if it is >= *phi*, else ``None`` (computed with cut-off)."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    d = distance_within(a, b, _distance_budget(a, b, phi))
    if d is None:
        return None
    sim = 1.0 - d / longest
    return sim if sim >= phi else None


def best_match(query: str, candidates: list[str], phi: float = 0.0) -> tuple[int, float] | None:
    """The index and similarity of the candidate most similar to *query*.

    Only candidates with similarity >= *phi* qualify; returns ``None`` when
    no candidate clears the threshold.  Ties keep the first candidate, which
    makes gazetteer lookups deterministic.
    """
    best_index = -1
    best_sim = phi
    found = False
    for i, cand in enumerate(candidates):
        sim = similarity_at_least(query, cand, best_sim)
        if sim is None:
            continue
        if not found or sim > best_sim:
            best_index, best_sim, found = i, sim, True
            if best_sim >= 1.0:  # similarity is capped at 1.0: exact match
                break
    if not found:
        return None
    return best_index, best_sim


class GazetteerIndex:
    """A pruning candidate index for repeated best-match queries.

    Scanning a full gazetteer per query (:func:`best_match`) costs one
    banded DP per candidate.  Most of those candidates can be rejected
    without running any DP, using two valid lower bounds on the edit
    distance:

    * **length bound** — ``distance(a, b) >= abs(|a| - |b|)``, so whole
      length buckets fall outside the phi-implied edit budget
      ``(1-phi) * max(|a|, |b|)`` at once;
    * **bag bound** — every edit fixes at most one missing and one surplus
      character, so ``distance(a, b) >= max(#missing, #surplus)`` over the
      character multisets; evaluated vectorized per length bucket, it
      rejects most remaining candidates with one NumPy pass.

    Candidates are bucketed by normalized length and, inside each length,
    by first token.  A query scans feasible lengths nearest-first and the
    bucket sharing its first token before the others — a high-similarity
    candidate found early tightens the running threshold, which shrinks
    the edit budget for everything after it.  Results are **identical** to
    the linear :func:`best_match` over the same candidate list (same
    index, same similarity, same tie-breaks): both bounds only skip
    candidates whose banded DP would return ``None`` anyway, and ties are
    resolved toward the lowest candidate index regardless of scan order.

    A per-instance memo caches repeated ``(query, phi)`` lookups, since
    real EPC collections repeat the same address strings heavily.
    """

    def __init__(self, candidates: list[str]):
        self.candidates = list(candidates)
        self._first_token = [
            c.split(" ", 1)[0] if c else "" for c in self.candidates
        ]
        # character -> column of the count matrices
        alphabet = sorted({ch for c in self.candidates for ch in c})
        self._alphabet = {ch: k for k, ch in enumerate(alphabet)}
        width = max(len(alphabet), 1)
        # length -> (ascending indices, per-candidate char counts,
        #            first token -> ascending indices)
        self._buckets: dict[
            int, tuple[np.ndarray, np.ndarray, dict[str, list[int]]]
        ] = {}
        by_length: dict[int, list[int]] = {}
        for i, cand in enumerate(self.candidates):
            by_length.setdefault(len(cand), []).append(i)
        for lb, idxs in by_length.items():
            counts = np.zeros((len(idxs), width), dtype=np.int32)
            by_token: dict[str, list[int]] = {}
            for row, i in enumerate(idxs):
                for ch in self.candidates[i]:
                    counts[row, self._alphabet[ch]] += 1
                by_token.setdefault(self._first_token[i], []).append(i)
            self._buckets[lb] = (
                np.asarray(idxs, dtype=np.intp), counts, by_token
            )
        self._memo: dict[tuple[str, float], tuple[int, float] | None] = {}

    def __len__(self) -> int:
        return len(self.candidates)

    @staticmethod
    def _length_feasible(la: int, lb: int, phi: float) -> bool:
        """Whether a candidate of length *lb* can clear *phi* at all."""
        longest = max(la, lb)
        return abs(la - lb) <= int((1.0 - phi) * longest + 1e-9)

    def _query_counts(self, query: str) -> tuple[np.ndarray, int]:
        """Alphabet counts of *query* plus its out-of-alphabet char count."""
        counts = np.zeros(max(len(self._alphabet), 1), dtype=np.int32)
        unknown = 0
        for ch in query:
            k = self._alphabet.get(ch)
            if k is None:
                unknown += 1
            else:
                counts[k] += 1
        return counts, unknown

    def best_match(self, query: str, phi: float = 0.0) -> tuple[int, float] | None:
        """Like :func:`best_match` over the indexed candidates.

        Returns the same ``(index, similarity)`` (or ``None``) as the
        linear scan: the maximum similarity >= *phi*, lowest candidate
        index on ties.
        """
        key = (query, phi)
        hit = self._memo.get(key, _MISS)
        if hit is not _MISS:
            return hit
        result = self._scan(query, phi)
        self._memo[key] = result
        return result

    def _scan(self, query: str, phi: float) -> tuple[int, float] | None:
        la = len(query)
        first = query.split(" ", 1)[0] if query else ""
        lengths = sorted(
            (lb for lb in self._buckets if self._length_feasible(la, lb, phi)),
            key=lambda lb: (abs(lb - la), lb),
        )
        q_counts, q_unknown = self._query_counts(query)
        best_index = -1
        best_sim = phi
        found = False

        def consider(i: int) -> bool:
            """DP-check candidate *i*; True once an exact match is held."""
            nonlocal best_index, best_sim, found
            sim = similarity_at_least(query, self.candidates[i], best_sim)
            if sim is not None and (
                not found
                or sim > best_sim
                or (sim == best_sim and i < best_index)
            ):
                best_index, best_sim, found = i, sim, True
            return found and best_sim >= 1.0  # capped at 1.0: exact match

        # pass 1: buckets sharing the query's first token (likeliest to
        # hold a near-duplicate, so the threshold tightens early)
        for lb in lengths:
            for i in self._buckets[lb][2].get(first, ()):
                if consider(i):
                    # equality lives in exactly this bucket, scanned in
                    # ascending index order: first hit = lowest index
                    return best_index, 1.0

        # pass 2: everything else, bag-bound-filtered per length bucket.
        # Buckets infeasible at the *running* threshold hold only strictly
        # worse candidates, so skipping them never changes the outcome.
        for lb in lengths:
            if not self._length_feasible(la, lb, best_sim):
                continue
            budget = int((1.0 - best_sim) * max(la, lb) + 1e-9)
            indices, counts, __ = self._buckets[lb]
            deltas = counts - q_counts
            surplus = np.where(deltas > 0, deltas, 0).sum(axis=1)
            missing = np.where(deltas < 0, -deltas, 0).sum(axis=1) + q_unknown
            feasible = np.maximum(surplus, missing) <= budget
            for i in indices[feasible]:
                i = int(i)
                if self._first_token[i] == first:
                    continue  # already scanned in pass 1
                if consider(i):
                    return best_index, 1.0
        if not found:
            return None
        return best_index, best_sim


#: Sentinel distinguishing "memoized None" from "not memoized".
_MISS = object()
