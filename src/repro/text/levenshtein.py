"""Levenshtein edit distance and the similarity score used by INDICE.

The geospatial cleaning step (paper, Section 2.1.1) compares each address in
the EPC collection against a referenced street map.  For each pair of
addresses the Levenshtein distance [19] counts the minimum number of
single-character insertions, deletions and substitutions turning one string
into the other; the *similarity* derived from it "takes values in the range
[0-1], where 0 indicates total dissimilarity and 1 equality".

We normalize by the longer string's length::

    similarity(a, b) = 1 - distance(a, b) / max(len(a), len(b))

which satisfies exactly that contract (1 iff the strings are equal, 0 iff
they share no aligned characters at all).

The implementation is a two-row dynamic program with an optional cut-off
band: when the caller only cares whether the similarity clears a threshold
``phi`` (the INDICE acceptance test), rows whose minimum already exceeds the
implied distance budget abort early.
"""

from __future__ import annotations

__all__ = ["distance", "similarity", "distance_within", "best_match"]


def distance(a: str, b: str) -> int:
    """The Levenshtein edit distance between *a* and *b*.

    >>> distance("corso duca", "corso duca")
    0
    >>> distance("via roma", "via rome")
    1
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):  # keep the inner loop over the longer string
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,       # deletion
                current[j - 1] + 1,    # insertion
                previous[j - 1] + cost,  # substitution
            )
        previous, current = current, previous
    return previous[len(b)]


def distance_within(a: str, b: str, budget: int) -> int | None:
    """The edit distance if it does not exceed *budget*, else ``None``.

    A length-difference pre-check and an early-abort row scan make this much
    cheaper than :func:`distance` when most candidates are far away, which is
    the common case when scanning a street gazetteer.
    """
    if budget < 0:
        return None
    if a == b:
        return 0
    if abs(len(a) - len(b)) > budget:
        return None
    if not a or not b:
        d = max(len(a), len(b))
        return d if d <= budget else None
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        row_min = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
            if current[j] < row_min:
                row_min = current[j]
        if row_min > budget:
            return None
        previous, current = current, previous
    d = previous[len(b)]
    return d if d <= budget else None


def similarity(a: str, b: str) -> float:
    """Levenshtein similarity in [0, 1]; 1 means equality.

    >>> similarity("via roma", "via roma")
    1.0
    >>> similarity("abc", "xyz")
    0.0
    """
    if a == b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - distance(a, b) / longest


def _distance_budget(a: str, b: str, phi: float) -> int:
    """The largest edit distance for which similarity(a, b) >= phi."""
    longest = max(len(a), len(b))
    return int((1.0 - phi) * longest + 1e-9)


def similarity_at_least(a: str, b: str, phi: float) -> float | None:
    """The similarity if it is >= *phi*, else ``None`` (computed with cut-off)."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    d = distance_within(a, b, _distance_budget(a, b, phi))
    if d is None:
        return None
    sim = 1.0 - d / longest
    return sim if sim >= phi else None


def best_match(query: str, candidates: list[str], phi: float = 0.0) -> tuple[int, float] | None:
    """The index and similarity of the candidate most similar to *query*.

    Only candidates with similarity >= *phi* qualify; returns ``None`` when
    no candidate clears the threshold.  Ties keep the first candidate, which
    makes gazetteer lookups deterministic.
    """
    best_index = -1
    best_sim = phi
    found = False
    for i, cand in enumerate(candidates):
        sim = similarity_at_least(query, cand, best_sim)
        if sim is None:
            continue
        if not found or sim > best_sim:
            best_index, best_sim, found = i, sim, True
            if best_sim == 1.0:
                break
    if not found:
        return None
    return best_index, best_sim
