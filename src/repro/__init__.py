"""INDICE — INformative DynamiC dashboard Engine (reproduction).

A full reimplementation of the system described in

    Cerquitelli et al., "Exploring energy performance certificates through
    visualization", Proceedings of the Workshops of the EDBT/ICDT 2019
    Joint Conference (BigVis), CEUR-WS Vol. 2322.

The package mirrors the paper's three-tier architecture (Figure 1):

* :mod:`repro.preprocessing` — geospatial cleaning against a referenced
  street map and the outlier-detection battery;
* :mod:`repro.query` / :mod:`repro.analytics` — the querying engine,
  stakeholder profiles, K-means, CART discretization, association rules,
  correlation and descriptive statistics;
* :mod:`repro.dashboard` — choropleth / scatter / cluster-marker energy
  maps, charts and standalone-HTML informative dashboards.

Substrates the paper relied on externally are built in:
:mod:`repro.dataset` (columnar tables, the 132-attribute EPC schema and a
synthetic Piedmont collection), :mod:`repro.text` (Levenshtein matching)
and :mod:`repro.geo` (projections, grids, administrative regions).

Quickstart::

    from repro import Indice, IndiceConfig
    from repro.dataset import generate_epc_collection, apply_noise

    collection = generate_epc_collection()          # ~25k certificates
    noisy = apply_noise(collection)                  # real-world dirt
    collection.table = noisy.table
    engine = Indice(collection)
    dashboard = engine.run()                         # full pipeline
    dashboard.save("indice_dashboard.html")
"""

from .core import (
    AnalyticsOutcome,
    Indice,
    IndiceConfig,
    PreprocessingOutcome,
    ProvenanceLog,
)
from .query.stakeholders import Stakeholder
from .geo.regions import Granularity

__version__ = "1.0.0"

__all__ = [
    "AnalyticsOutcome",
    "Indice",
    "IndiceConfig",
    "PreprocessingOutcome",
    "ProvenanceLog",
    "Stakeholder",
    "Granularity",
    "__version__",
]
