"""Fault injection and resilience policies for the INDICE pipeline.

A production deployment of the framework lives on dependencies that fail:
the metered geocoding service times out or runs out of quota, the on-disk
stage cache gets truncated by a crashed writer, a process-pool worker dies
mid-chunk, the CSV open-data dump is unreadable.  This package gives the
pipeline two things:

* :mod:`repro.faults.plan` — *deterministic* fault injection.  A
  :class:`FaultPlan` names the sites where failures appear (``
  geocoder.request``, ``cache.read``, ``parallel.worker``, ...) and a
  seeded :class:`FaultInjector` decides, reproducibly, which arrivals at
  each site actually fail.  The hooks threaded through the pipeline are
  ``if injector is None`` guards — free when injection is off.
* :mod:`repro.faults.policy` — recovery policies: decorrelated-jitter
  :func:`retry_with_backoff`, per-stage :class:`Deadline` budgets and a
  :class:`CircuitBreaker` for the geocoder, plus the
  :class:`ResiliencePolicy` bundle of knobs carried by ``IndiceConfig``.

The contract enforced by the chaos harness (``tests/test_chaos_pipeline.py``):
every injected fault either *recovers* (outputs bit-identical to the
fault-free run) or *degrades gracefully* with the degradation recorded in
the provenance log — never a silent difference, never a crash.
"""

from .plan import (
    CACHE_READ,
    CACHE_WRITE,
    DATASET_READ,
    DATASET_WRITE,
    GEOCODER_REQUEST,
    KNOWN_SITES,
    PARALLEL_WORKER,
    SERVE_REQUEST,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedIOError,
    TransientServiceError,
    WorkerCrashError,
)
from .policy import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    ResiliencePolicy,
    RetryPolicy,
    retry_with_backoff,
)

__all__ = [
    "CACHE_READ",
    "CACHE_WRITE",
    "DATASET_READ",
    "DATASET_WRITE",
    "GEOCODER_REQUEST",
    "KNOWN_SITES",
    "PARALLEL_WORKER",
    "SERVE_REQUEST",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedIOError",
    "ResiliencePolicy",
    "RetryPolicy",
    "TransientServiceError",
    "WorkerCrashError",
    "retry_with_backoff",
]
