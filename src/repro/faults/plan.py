"""Deterministic fault plans and the injector that executes them.

A :class:`FaultPlan` is data — a seed plus a list of :class:`FaultSpec`
entries, each naming a *site* (a stable string like ``geocoder.request``),
a :class:`FaultKind`, and when it applies (probability per arrival, a
maximum number of injections, an arrival offset).  A
:class:`FaultInjector` executes the plan: call sites announce each arrival
(``injector.arrive(site)``) and get back the fault kind to simulate, or
``None``.  Decisions are drawn from a per-spec RNG seeded from
``(plan.seed, spec index, site, kind)``, so two injectors built from the
same plan produce the same fault sequence at every site regardless of how
sites interleave — which is what makes a chaos run reproducible from a
``--fault-plan`` string alone.

Plans round-trip through a compact spec string (the CLI format) and JSON::

    geocoder.request:transient@0.3*5 ; cache.read:corrupt ; seed=42

means "the first 5 geocoder requests each fail transiently with
probability 0.3; every cache read returns corrupted bytes; seed 42".
"""

from __future__ import annotations

import enum
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedIOError",
    "TransientServiceError",
    "WorkerCrashError",
    "GEOCODER_REQUEST",
    "CACHE_READ",
    "CACHE_WRITE",
    "PARALLEL_WORKER",
    "DATASET_READ",
    "DATASET_WRITE",
    "SERVE_REQUEST",
]

# -- the named fault sites threaded through the pipeline ----------------------

GEOCODER_REQUEST = "geocoder.request"
CACHE_READ = "cache.read"
CACHE_WRITE = "cache.write"
PARALLEL_WORKER = "parallel.worker"
DATASET_READ = "dataset.read"
DATASET_WRITE = "dataset.write"
SERVE_REQUEST = "serve.request"

#: Every site with an injection hook, for validation and ``--help`` text.
KNOWN_SITES = (
    GEOCODER_REQUEST,
    CACHE_READ,
    CACHE_WRITE,
    PARALLEL_WORKER,
    DATASET_READ,
    DATASET_WRITE,
    SERVE_REQUEST,
)


class FaultKind(enum.Enum):
    """What kind of failure an injection simulates."""

    TRANSIENT = "transient"   # retryable service error (timeouts, 5xx)
    QUOTA = "quota"           # metered service out of free requests
    CORRUPT = "corrupt"       # bytes arrive, but they are garbage
    TRUNCATE = "truncate"     # a partial write / partial read
    IO_ERROR = "io_error"     # the operation itself fails with an OSError
    CRASH = "crash"           # a worker process dies mid-chunk
    DELAY = "delay"           # a straggler: the work completes, slowly


# -- injected exception types -------------------------------------------------


class InjectedFault(RuntimeError):
    """Base class of every exception raised by fault injection."""


class TransientServiceError(InjectedFault):
    """A retryable failure of an external service (the geocoder)."""


class WorkerCrashError(InjectedFault):
    """A process-pool worker died before finishing its chunk."""


class InjectedIOError(OSError, InjectedFault):
    """An injected I/O failure (dataset or cache file operations)."""


_SPEC_RE = re.compile(
    r"^(?P<site>[a-z_.]+):(?P<kind>[a-z_]+)"
    r"(?:@(?P<rate>[0-9.]+))?"
    r"(?:\*(?P<times>\d+))?"
    r"(?:\+(?P<after>\d+))?$"
)


@dataclass(frozen=True)
class FaultSpec:
    """One rule of a fault plan.

    Parameters
    ----------
    site:
        The injection site the rule applies to (e.g. ``geocoder.request``).
    kind:
        The failure to simulate when the rule fires.
    rate:
        Probability that an eligible arrival fires, in ``[0, 1]``.
    times:
        Maximum number of injections (``None`` = unlimited).
    after:
        Number of leading arrivals that are always spared.
    """

    site: str
    kind: FaultKind
    rate: float = 1.0
    times: int | None = None
    after: int = 0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            valid = ", ".join(KNOWN_SITES)
            raise ValueError(
                f"unknown fault site {self.site!r} — a plan naming it would "
                f"silently never fire (valid sites: {valid})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be non-negative, got {self.times}")
        if self.after < 0:
            raise ValueError(f"after must be non-negative, got {self.after}")

    def render(self) -> str:
        """The spec-string form (inverse of :meth:`FaultSpec.parse`)."""
        out = f"{self.site}:{self.kind.value}"
        # rate is validated into [0, 1], so < 1.0 is exactly "non-default"
        if self.rate < 1.0:
            out += f"@{self.rate:g}"
        if self.times is not None:
            out += f"*{self.times}"
        if self.after:
            out += f"+{self.after}"
        return out

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``site:kind[@rate][*times][+after]``."""
        match = _SPEC_RE.match(text.strip())
        if match is None:
            raise ValueError(
                f"bad fault spec {text!r} "
                "(expected site:kind[@rate][*times][+after])"
            )
        try:
            kind = FaultKind(match["kind"])
        except ValueError:
            valid = ", ".join(k.value for k in FaultKind)
            raise ValueError(
                f"unknown fault kind {match['kind']!r} (one of: {valid})"
            ) from None
        return cls(
            site=match["site"],
            kind=kind,
            rate=float(match["rate"]) if match["rate"] else 1.0,
            times=int(match["times"]) if match["times"] else None,
            after=int(match["after"]) if match["after"] else 0,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault rules to execute — pure data, fully serializable."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.faults)

    def sites(self) -> tuple[str, ...]:
        """Distinct sites the plan touches, in first-appearance order."""
        return tuple(dict.fromkeys(s.site for s in self.faults))

    # -- spec-string form ---------------------------------------------------

    def render(self) -> str:
        """The ``--fault-plan`` string form of this plan."""
        parts = [spec.render() for spec in self.faults]
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``spec;spec;...;seed=N`` string (see module docstring)."""
        specs: list[FaultSpec] = []
        seed = 0
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            if part.startswith("seed="):
                seed = int(part[len("seed="):])
            else:
                specs.append(FaultSpec.parse(part))
        return cls(faults=tuple(specs), seed=seed)

    @classmethod
    def load(cls, source: str) -> "FaultPlan":
        """Parse a CLI argument: a spec string, or ``@path`` to a JSON file."""
        if source.startswith("@"):
            return cls.from_json(Path(source[1:]).read_text(encoding="utf-8"))
        return cls.parse(source)

    # -- JSON form ----------------------------------------------------------

    def to_json(self) -> str:
        """JSON document round-tripping through :meth:`from_json`."""
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [
                    {
                        "site": s.site,
                        "kind": s.kind.value,
                        "rate": s.rate,
                        "times": s.times,
                        "after": s.after,
                    }
                    for s in self.faults
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the JSON document written by :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            faults=tuple(
                FaultSpec(
                    site=f["site"],
                    kind=FaultKind(f["kind"]),
                    rate=f.get("rate", 1.0),
                    times=f.get("times"),
                    after=f.get("after", 0),
                )
                for f in payload.get("faults", ())
            ),
            seed=payload.get("seed", 0),
        )


def _spec_seed(plan_seed: int, index: int, spec: FaultSpec) -> int:
    """A stable RNG seed for one spec, independent of the other specs."""
    digest = hashlib.sha256(
        f"{plan_seed}:{index}:{spec.site}:{spec.kind.value}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


class _SpecState:
    """Runtime counters and RNG of one :class:`FaultSpec`."""

    __slots__ = ("spec", "rng", "arrivals", "injections")

    def __init__(self, spec: FaultSpec, seed: int):
        self.spec = spec
        self.rng = np.random.default_rng(seed)
        self.arrivals = 0
        self.injections = 0

    def decide(self) -> bool:
        """Whether this arrival fires (advances counters deterministically)."""
        self.arrivals += 1
        spec = self.spec
        if spec.times is not None and self.injections >= spec.times:
            return False
        if self.arrivals <= spec.after:
            return False
        if spec.rate < 1.0 and self.rng.random() >= spec.rate:
            return False
        self.injections += 1
        return True


class FaultInjector:
    """Executes a :class:`FaultPlan` at the pipeline's injection sites.

    Call sites are written so a ``None`` injector costs one identity
    comparison; with an injector present, each arrival at a site advances
    that site's deterministic counters and may return a fault kind.  The
    injector keeps a full ``events`` history (``(site, kind)`` pairs in
    arrival order) so chaos tests can assert exactly what fired.
    """

    def __init__(self, plan: FaultPlan | str | None = None):
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        self.plan = plan or FaultPlan()
        self._by_site: dict[str, list[_SpecState]] = {}
        for index, spec in enumerate(self.plan.faults):
            state = _SpecState(spec, _spec_seed(self.plan.seed, index, spec))
            self._by_site.setdefault(spec.site, []).append(state)
        self.events: list[tuple[str, FaultKind]] = []

    def watches(self, site: str) -> bool:
        """Whether the plan has any rule for *site*."""
        return site in self._by_site

    def arrive(self, site: str) -> FaultKind | None:
        """Announce one arrival at *site*; the fault to simulate, or None.

        When several rules watch the same site, the first (in plan order)
        that fires wins, but every rule's arrival counter still advances —
        so adding a rule never changes *when* an existing rule fires.
        """
        states = self._by_site.get(site)
        if not states:
            return None
        fired: FaultKind | None = None
        for state in states:
            if state.decide() and fired is None:
                fired = state.spec.kind
        if fired is not None:
            self.events.append((site, fired))
        return fired

    def fire(self, site: str) -> None:
        """Like :meth:`arrive`, but raises the matching injected exception.

        Only meaningful for kinds that map to an exception (``transient``,
        ``io_error``, ``crash``); data-shaping kinds (``corrupt``,
        ``truncate``) must be handled by the call site via :meth:`arrive`.
        """
        kind = self.arrive(site)
        if kind is None:
            return
        if kind is FaultKind.TRANSIENT:
            raise TransientServiceError(f"injected transient fault at {site}")
        if kind is FaultKind.IO_ERROR:
            raise InjectedIOError(f"injected I/O failure at {site}")
        if kind is FaultKind.CRASH:
            raise WorkerCrashError(f"injected crash at {site}")
        raise InjectedFault(f"injected {kind.value} fault at {site}")

    def injections(self, site: str | None = None) -> int:
        """Number of faults injected so far (optionally at one site)."""
        return sum(
            1 for s, __ in self.events if site is None or s == site
        )

    @staticmethod
    def mangle(data: bytes, kind: FaultKind) -> bytes:
        """Apply a data-shaping fault to *data* (corrupt or truncate)."""
        if kind is FaultKind.CORRUPT:
            return b"\x00INJECTED-CORRUPTION\x00" + data[::-1][:32]
        if kind is FaultKind.TRUNCATE:
            return data[: max(1, len(data) // 2)]
        return data
