"""Recovery policies: retry with backoff, deadlines, circuit breaking.

These are the other half of the resilience tier: :mod:`repro.faults.plan`
makes dependencies fail on purpose; this module is how the pipeline
survives them.

* :func:`retry_with_backoff` — retries a callable on transient errors
  with *decorrelated jitter* (AWS architecture blog): each delay is drawn
  uniformly from ``[base, 3 * previous]`` and capped, which spreads
  retrying clients apart instead of synchronizing them.  Seeded, so a
  chaos run's retry schedule is reproducible.
* :class:`Deadline` — a monotonic time budget for a pipeline stage;
  optional stages are skipped (and the skip logged) once it expires.
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  failures the circuit opens and calls are refused outright for
  ``recovery_s`` seconds, then one probe is allowed (half-open).  This is
  what keeps an exhausted geocoder from stalling the whole cleaning pass
  behind per-row retry storms.
* :class:`ResiliencePolicy` — the bundle of knobs carried by
  ``IndiceConfig`` so every engine stage shares one retry/breaker
  configuration.

Every class takes an injectable clock (and the retry loop an injectable
``sleep``), so tests run in virtual time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = [
    "RetryPolicy",
    "retry_with_backoff",
    "Deadline",
    "DeadlineExceeded",
    "CircuitBreaker",
    "ResiliencePolicy",
]


class DeadlineExceeded(RuntimeError):
    """A stage ran past its time budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts."""

    retries: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError(
                "delays must satisfy 0 <= base_delay_s <= max_delay_s"
            )

    def delays(self) -> list[float]:
        """The (seeded, deterministic) sleep schedule of a full retry run."""
        rng = np.random.default_rng(self.seed)
        out: list[float] = []
        delay = self.base_delay_s
        for __ in range(self.retries):
            delay = min(
                self.max_delay_s,
                float(rng.uniform(self.base_delay_s, max(delay * 3, self.base_delay_s))),
            )
            out.append(delay)
        return out


def retry_with_backoff(
    func: Callable[[], Any],
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    deadline: "Deadline | None" = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> Any:
    """Call *func*, retrying on *retry_on* with decorrelated-jitter backoff.

    The last exception is re-raised once ``policy.retries`` retries are
    spent or *deadline* expires; *on_retry* (when given) observes each
    retried failure as ``(attempt_index, exception)``.
    """
    policy = policy or RetryPolicy()
    schedule = policy.delays()
    for attempt in range(policy.retries + 1):
        try:
            return func()
        except retry_on as exc:
            if attempt >= policy.retries:
                raise
            if deadline is not None and deadline.expired():
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(schedule[attempt])


class Deadline:
    """A monotonic time budget.

    ``Deadline(None)`` never expires, so callers can thread one object
    through unconditionally.
    """

    def __init__(
        self,
        budget_s: float | None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget_s = budget_s
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (``inf`` for an unbounded deadline; floored at 0)."""
        if self.budget_s is None:
            return float("inf")
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining() <= 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_s:g}s budget"
            )


class CircuitBreaker:
    """Classic three-state breaker (closed / open / half-open).

    ``allow()`` answers "may I attempt the call?"; callers report the
    outcome via ``record_success()`` / ``record_failure()``.  While open,
    every ``allow()`` refuses until ``recovery_s`` has passed, after which
    exactly one probe call is let through (half-open); its outcome closes
    or re-opens the circuit.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.times_opened = 0

    @property
    def state(self) -> str:
        """The current circuit state."""
        if self._opened_at is None:
            return self.CLOSED
        if self._probing or (
            self._clock() - self._opened_at >= self.recovery_s
        ):
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """Whether a call may be attempted right now."""
        if self._opened_at is None:
            return True
        if self._probing:
            return False  # one probe already in flight this recovery window
        if self._clock() - self._opened_at >= self.recovery_s:
            self._probing = True  # half-open: admit a single probe
            return True
        return False

    def record_success(self) -> None:
        """A call succeeded: close the circuit and reset the counters."""
        self._consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """A call failed: count it, opening the circuit at the threshold."""
        self._consecutive_failures += 1
        if self._probing or self._consecutive_failures >= self.failure_threshold:
            if self._opened_at is None or self._probing:
                self.times_opened += 1
            self._opened_at = self._clock()
            self._probing = False


@dataclass(frozen=True)
class ResiliencePolicy:
    """The engine-level resilience knobs (carried by ``IndiceConfig``).

    These never change what a *successful* pipeline run computes — only
    how failures are absorbed — so they are excluded from stage-cache
    fingerprints, like the perf knobs.
    """

    #: Retries per geocoder request on a transient failure.
    geocoder_retries: int = 3
    #: First backoff delay (decorrelated jitter grows it, capped below).
    retry_base_delay_s: float = 0.02
    #: Backoff cap.
    retry_max_delay_s: float = 0.25
    #: Consecutive geocoder failures before the circuit opens.
    breaker_threshold: int = 3
    #: Seconds the circuit stays open before admitting a probe request.
    breaker_recovery_s: float = 30.0
    #: Wall-clock budget per pipeline stage (None = unbounded).  On expiry
    #: the stage finishes its mandatory steps and skips optional ones
    #: (multivariate outliers, rule mining), recording the degradation.
    stage_timeout_s: float | None = None

    def retry_policy(self, seed: int = 0) -> RetryPolicy:
        """The :class:`RetryPolicy` equivalent of these knobs."""
        return RetryPolicy(
            retries=self.geocoder_retries,
            base_delay_s=self.retry_base_delay_s,
            max_delay_s=self.retry_max_delay_s,
            seed=seed,
        )

    def breaker(self) -> CircuitBreaker:
        """A fresh :class:`CircuitBreaker` configured from these knobs."""
        return CircuitBreaker(
            failure_threshold=self.breaker_threshold,
            recovery_s=self.breaker_recovery_s,
        )
