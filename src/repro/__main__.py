"""``python -m repro`` — the INDICE command-line interface."""

import sys

from .cli import main

sys.exit(main())
