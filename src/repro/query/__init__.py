"""INDICE querying tier: predicates, the query engine, stakeholder profiles."""

from .predicates import (
    And,
    Between,
    Comparison,
    IsMissing,
    Not,
    OneOf,
    Or,
    Predicate,
    WithinRegion,
)
from .engine import Query, QueryEngine, QueryResult
from .stakeholders import (
    RecommendedReport,
    ReportKind,
    Stakeholder,
    StakeholderProfile,
    profile_for,
)

__all__ = [
    "And",
    "Between",
    "Comparison",
    "IsMissing",
    "Not",
    "OneOf",
    "Or",
    "Predicate",
    "WithinRegion",
    "Query",
    "QueryEngine",
    "QueryResult",
    "RecommendedReport",
    "ReportKind",
    "Stakeholder",
    "StakeholderProfile",
    "profile_for",
]
