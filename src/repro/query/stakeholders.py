"""Stakeholder profiles and their recommended reports.

"Possible stakeholders may be citizens, public administration and energy
scientists.  Each of them could be interested in different characteristics
of the dataset under analysis.  For each stakeholder, INDICE produces the
best possible representation ... the system is able to automatically
propose to the specific end-user an optimal set of interesting reports and
graphical representations" (paper, Section 2.2.1).

Each profile bundles:

* the attributes that stakeholder typically inspects,
* the default spatial granularity of their maps,
* a set of named :class:`RecommendedReport` entries (which query to run
  and which visualization kind shows it best).

The user can always override everything — these are defaults, exactly as
in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..dataset.schema import PAPER_CLUSTERING_FEATURES, PAPER_RESPONSE
from ..geo.regions import Granularity
from .engine import Query
from .predicates import Comparison

__all__ = ["Stakeholder", "RecommendedReport", "StakeholderProfile", "profile_for"]


class Stakeholder(enum.Enum):
    """The three end-user categories the paper names."""

    CITIZEN = "citizen"
    PUBLIC_ADMINISTRATION = "public_administration"
    ENERGY_SCIENTIST = "energy_scientist"


class ReportKind(enum.Enum):
    """Which dashboard component renders the report."""

    CHOROPLETH_MAP = "choropleth_map"
    SCATTER_MAP = "scatter_map"
    CLUSTER_MARKER_MAP = "cluster_marker_map"
    FREQUENCY_DISTRIBUTION = "frequency_distribution"
    RULES_TABLE = "rules_table"
    CORRELATION_MATRIX = "correlation_matrix"
    SUMMARY_TABLE = "summary_table"


@dataclass(frozen=True)
class RecommendedReport:
    """One suggested analysis: a query plus the visualization for it."""

    name: str
    description: str
    kind: ReportKind
    query: Query
    attribute: str
    granularity: Granularity


@dataclass(frozen=True)
class StakeholderProfile:
    """The default analysis surface offered to one stakeholder."""

    stakeholder: Stakeholder
    description: str
    default_attributes: tuple[str, ...]
    default_granularity: Granularity
    reports: tuple[RecommendedReport, ...] = field(default_factory=tuple)

    def report(self, name: str) -> RecommendedReport:
        """The recommended report named *name*."""
        for r in self.reports:
            if r.name == name:
                return r
        raise KeyError(f"no recommended report named {name!r}")


def _residential_query() -> Query:
    """The paper's case-study selection: permanent-residence units (E.1.1)."""
    return Query(where=Comparison("building_type", "==", "E.1.1"))


def _citizen_profile() -> StakeholderProfile:
    """Citizens: find efficient areas / flats worth buying (paper's wording:
    'discover areas of the city with more performing buildings')."""
    return StakeholderProfile(
        stakeholder=Stakeholder.CITIZEN,
        description=(
            "Energy analysis of buildings in a specific area; geometric "
            "features per intended use; find well-performing flats."
        ),
        default_attributes=("eph", "energy_class", "u_value_windows", "heated_surface"),
        default_granularity=Granularity.NEIGHBOURHOOD,
        reports=(
            RecommendedReport(
                "efficient_areas",
                "Average heating demand per neighbourhood (lower = better)",
                ReportKind.CHOROPLETH_MAP,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.NEIGHBOURHOOD,
            ),
            RecommendedReport(
                "unit_efficiency",
                "Per-certificate heating demand in the chosen area",
                ReportKind.SCATTER_MAP,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.UNIT,
            ),
            RecommendedReport(
                "class_distribution",
                "How energy classes distribute in the chosen area",
                ReportKind.FREQUENCY_DISTRIBUTION,
                _residential_query(),
                "energy_class",
                Granularity.NEIGHBOURHOOD,
            ),
        ),
    )


def _pa_profile() -> StakeholderProfile:
    """Public administration: 'identifying areas where to promote and
    invest for energy renovations' (the Section 3 case study)."""
    return StakeholderProfile(
        stakeholder=Stakeholder.PUBLIC_ADMINISTRATION,
        description=(
            "Identify low-performance areas to target renovation policies "
            "and incentives."
        ),
        default_attributes=PAPER_CLUSTERING_FEATURES + (PAPER_RESPONSE,),
        default_granularity=Granularity.DISTRICT,
        reports=(
            RecommendedReport(
                "renovation_targets",
                "Cluster-marker map of building groups by energy performance",
                ReportKind.CLUSTER_MARKER_MAP,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.DISTRICT,
            ),
            RecommendedReport(
                "demand_overview",
                "Average heating demand per district",
                ReportKind.CHOROPLETH_MAP,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.DISTRICT,
            ),
            RecommendedReport(
                "worst_envelopes",
                "Certificates with the most dispersive opaque envelopes",
                ReportKind.SCATTER_MAP,
                _residential_query().with_filter(
                    Comparison("u_value_opaque", ">", 0.8)
                ),
                "u_value_opaque",
                Granularity.NEIGHBOURHOOD,
            ),
            RecommendedReport(
                "demand_drivers",
                "Association rules linking envelope classes to demand",
                ReportKind.RULES_TABLE,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.CITY,
            ),
        ),
    )


def _scientist_profile() -> StakeholderProfile:
    """Energy scientists: benchmarking groups of similar buildings through
    supervised and unsupervised techniques."""
    return StakeholderProfile(
        stakeholder=Stakeholder.ENERGY_SCIENTIST,
        description=(
            "Characterize groups of buildings with similar properties for "
            "benchmarking analysis."
        ),
        default_attributes=PAPER_CLUSTERING_FEATURES + (PAPER_RESPONSE,),
        default_granularity=Granularity.CITY,
        reports=(
            RecommendedReport(
                "feature_eligibility",
                "Pairwise correlations of candidate clustering features",
                ReportKind.CORRELATION_MATRIX,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.CITY,
            ),
            RecommendedReport(
                "building_groups",
                "K-means groups over thermo-physical features",
                ReportKind.CLUSTER_MARKER_MAP,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.CITY,
            ),
            RecommendedReport(
                "group_distributions",
                "Response distribution inside each cluster",
                ReportKind.FREQUENCY_DISTRIBUTION,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.CITY,
            ),
            RecommendedReport(
                "summary_statistics",
                "Count/mean/std/quartiles per selected attribute",
                ReportKind.SUMMARY_TABLE,
                _residential_query(),
                PAPER_RESPONSE,
                Granularity.CITY,
            ),
        ),
    )


_PROFILES = {
    Stakeholder.CITIZEN: _citizen_profile,
    Stakeholder.PUBLIC_ADMINISTRATION: _pa_profile,
    Stakeholder.ENERGY_SCIENTIST: _scientist_profile,
}


def profile_for(stakeholder: Stakeholder) -> StakeholderProfile:
    """The default profile of *stakeholder*."""
    return _PROFILES[stakeholder]()
