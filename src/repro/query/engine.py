"""The INDICE querying engine.

"To select and explore the dataset under analysis, INDICE implements a
query engine that lets the user focus on the single attributes of the
energy performance certificates ... with the possibility to set manually
the subset of features and parameters for the queries to which she is
interested in." (paper, Section 2.2.1.)

A :class:`Query` is a declarative description — attribute projection,
predicate filter, sort, limit, and optional group-by aggregation — that
:class:`QueryEngine` executes against any table.  Queries are plain
objects, so stakeholder profiles can recommend them and dashboards can
re-run them at different granularities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..dataset.table import Table
from .predicates import Predicate

__all__ = ["Query", "QueryEngine", "QueryResult"]


@dataclass(frozen=True)
class Query:
    """A declarative selection over an EPC table.

    All clauses are optional; an empty query returns the table unchanged.
    """

    select: tuple[str, ...] = ()
    where: Predicate | None = None
    sort_by: str | None = None
    descending: bool = False
    limit: int | None = None

    def with_filter(self, predicate: Predicate) -> "Query":
        """This query with an additional AND-ed predicate."""
        combined = predicate if self.where is None else (self.where & predicate)
        return replace(self, where=combined)

    def with_select(self, *attributes: str) -> "Query":
        """This query with the projection replaced."""
        return replace(self, select=tuple(attributes))

    def with_limit(self, limit: int) -> "Query":
        """This query with a row limit."""
        return replace(self, limit=limit)

    def with_sort(self, attribute: str, descending: bool = False) -> "Query":
        """This query sorted by *attribute*."""
        return replace(self, sort_by=attribute, descending=descending)


@dataclass
class QueryResult:
    """The rows a query selected, plus how the selection narrowed."""

    table: Table
    n_input_rows: int

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.table.n_rows

    @property
    def selectivity(self) -> float:
        """Fraction of input rows that survived the filter."""
        if self.n_input_rows == 0:
            return 0.0
        return self.n_rows / self.n_input_rows


class QueryEngine:
    """Executes :class:`Query` objects against a table."""

    def __init__(self, table: Table):
        self._table = table

    @property
    def table(self) -> Table:
        """The table this engine queries."""
        return self._table

    def execute(self, query: Query) -> QueryResult:
        """Run *query*: filter -> sort -> limit -> project."""
        out = self._table
        if query.where is not None:
            out = out.where(query.where.mask(out))
        if query.sort_by is not None:
            out = out.sort_by(query.sort_by, descending=query.descending)
        if query.limit is not None:
            out = out.head(query.limit)
        if query.select:
            out = out.select(list(query.select))
        return QueryResult(table=out, n_input_rows=self._table.n_rows)

    def aggregate(
        self,
        query: Query,
        by: str,
        attribute: str,
        func: Callable[[np.ndarray], float] = np.mean,
    ) -> dict[object, float]:
        """Filter with *query*, then aggregate *attribute* per group of *by*.

        This is the drill-down primitive the choropleth maps use: "each
        area is colored according to the average value of the considered
        variable" (paper, Section 2.3).
        """
        filtered = self._table
        if query.where is not None:
            filtered = filtered.where(query.where.mask(filtered))
        return filtered.aggregate(by, attribute, func)
