"""Predicate expressions for the INDICE query engine.

The querying engine "lets the user focus on the single attributes of the
energy performance certificates" (paper, Section 2.2.1).  Queries filter a
:class:`~repro.dataset.table.Table` with composable predicates; every
predicate knows how to evaluate itself to a boolean row mask.

Missing values never satisfy a comparison (SQL-like three-valued logic
collapsed to False), except :class:`IsMissing`, which selects them.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..dataset.table import ColumnKind, Table
from ..geo.regions import Granularity, RegionHierarchy

__all__ = [
    "Predicate",
    "Comparison",
    "Between",
    "OneOf",
    "IsMissing",
    "And",
    "Or",
    "Not",
    "WithinRegion",
]

_OPERATORS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate(ABC):
    """A boolean row filter over a table."""

    @abstractmethod
    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass
class Comparison(Predicate):
    """``attribute <op> value`` where op is one of == != < <= > >=.

    Order comparisons require a numeric attribute; equality works for any
    kind.  ``attribute != value`` is False for missing cells (they are
    neither equal nor unequal — they are unknown).
    """

    attribute: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in _OPERATORS:
            raise ValueError(f"unknown operator {self.op!r}")

    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""
        col = table.column(self.attribute)
        fn = _OPERATORS[self.op]
        if col.kind is ColumnKind.NUMERIC:
            values = col.values
            with np.errstate(invalid="ignore"):
                out = fn(values, float(self.value))
            return np.asarray(out, dtype=bool) & ~np.isnan(values)
        if self.op not in ("==", "!="):
            raise ValueError(
                f"operator {self.op!r} needs a numeric attribute, "
                f"{self.attribute!r} is {col.kind.value}"
            )
        target = str(self.value)
        return np.asarray(
            [v is not None and fn(v, target) for v in col.values], dtype=bool
        )


@dataclass
class Between(Predicate):
    """``low <= attribute <= high`` over a numeric attribute."""

    attribute: str
    low: float
    high: float

    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""
        values = table.column(self.attribute).values
        with np.errstate(invalid="ignore"):
            out = (values >= self.low) & (values <= self.high)
        return np.asarray(out, dtype=bool) & ~np.isnan(values)


@dataclass
class OneOf(Predicate):
    """``attribute IN (values...)`` over a categorical/text attribute."""

    attribute: str
    values: tuple

    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""
        col = table.column(self.attribute)
        allowed = {str(v) for v in self.values}
        if col.kind is ColumnKind.NUMERIC:
            allowed_f = {float(v) for v in self.values}
            return np.asarray(
                [not np.isnan(v) and float(v) in allowed_f for v in col.values],
                dtype=bool,
            )
        return np.asarray(
            [v is not None and v in allowed for v in col.values], dtype=bool
        )


@dataclass
class IsMissing(Predicate):
    """Selects rows where the attribute is missing."""

    attribute: str

    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""
        return table.column(self.attribute).is_missing()


@dataclass
class And(Predicate):
    """Conjunction of two predicates."""
    left: Predicate
    right: Predicate

    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""
        return self.left.mask(table) & self.right.mask(table)


@dataclass
class Or(Predicate):
    """Disjunction of two predicates."""
    left: Predicate
    right: Predicate

    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""
        return self.left.mask(table) | self.right.mask(table)


@dataclass
class Not(Predicate):
    """Negation of a predicate."""
    inner: Predicate

    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""
        return ~self.inner.mask(table)


@dataclass
class WithinRegion(Predicate):
    """Rows geolocated inside a named administrative region.

    This is the spatial drill-down filter behind the paper's "analysis of
    the buildings related to a specific area of the city".  Rows with
    missing coordinates never match.
    """

    hierarchy: RegionHierarchy
    level: Granularity
    name: str

    def mask(self, table: Table) -> np.ndarray:
        """The boolean mask of rows satisfying this predicate."""
        region = next(
            (r for r in self.hierarchy.regions_at(self.level) if r.name == self.name),
            None,
        )
        if region is None:
            raise ValueError(f"unknown {self.level.name.lower()} region {self.name!r}")
        lat = table["latitude"]
        lon = table["longitude"]
        lo_lat, lo_lon, hi_lat, hi_lon = region.bounding_box()
        out = np.zeros(table.n_rows, dtype=bool)
        for i in range(table.n_rows):
            if np.isnan(lat[i]) or np.isnan(lon[i]):
                continue
            if not (lo_lat <= lat[i] <= hi_lat and lo_lon <= lon[i] <= hi_lon):
                continue
            out[i] = region.contains(float(lat[i]), float(lon[i]))
        return out
