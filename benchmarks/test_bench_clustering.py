"""E4 + A2 — Figure 4's clustering: elbow-selected K-means on the
case-study features, with per-cluster response distributions.

Paper (Sections 2.2.2 + 3): K-means over (S/V, Uo, Uw, Sr, ETAH) with the
K "chosen as the point where the marginal decrease in the SSE curve is
maximized (aka elbow approach)"; the Figure 4 dashboard then shows the
EP_H distribution per cluster.  Shape to reproduce:

* SSE strictly decreases with K;
* the elbow lands on a small K (the stock has a handful of era regimes);
* clusters order the response: the worst cluster's mean EP_H is a
  multiple of the best cluster's (the dashboard's message that some
  groups of buildings are far less efficient).

A2 (ablation): the chosen K must be stable across K-means seeds.
"""

import numpy as np
from conftest import write_report

from repro.analytics.kmeans import choose_k_elbow, kmeans, kmeans_auto, standardize
from repro.dataset.schema import PAPER_CLUSTERING_FEATURES
from repro.query import Comparison, Query, QueryEngine

FEATURES = list(PAPER_CLUSTERING_FEATURES)


def _case_study_matrix(collection):
    turin_e11 = QueryEngine(collection.table).execute(
        Query(
            where=Comparison("city", "==", "Turin")
            & Comparison("building_type", "==", "E.1.1")
        )
    ).table
    matrix, __ = standardize(turin_e11.to_matrix(FEATURES))
    return turin_e11, matrix


def test_e4_elbow_clustering(collection, benchmark):
    turin_e11, matrix = _case_study_matrix(collection)

    auto = kmeans_auto(matrix, (2, 10), seed=0, n_init=3)
    benchmark.pedantic(
        kmeans, args=(matrix, auto.chosen_k),
        kwargs={"n_init": 3, "seed": 0}, rounds=3, iterations=1,
    )

    sse = [auto.curve[k] for k in sorted(auto.curve)]
    assert all(a > b for a, b in zip(sse, sse[1:]))  # SSE strictly decreases
    assert 3 <= auto.chosen_k <= 7  # a handful of stock regimes

    # per-cluster EP_H ordering (Figure 4's message)
    eph = turin_e11["eph"]
    labels = auto.result.labels
    cluster_means = {
        c: float(np.nanmean(eph[labels == c])) for c in range(auto.chosen_k)
    }
    ordered = sorted(cluster_means.values())
    assert ordered[-1] > 1.5 * ordered[0]

    lines = [
        "E4 — Figure 4: elbow-selected K-means (Turin, E.1.1)",
        f"rows clustered: {int((labels >= 0).sum())}",
        "",
        "K     SSE",
        *[f"{k:<5} {auto.curve[k]:.0f}" for k in sorted(auto.curve)],
        "",
        f"elbow-chosen K: {auto.chosen_k}",
        "",
        "cluster   n       mean EP_H",
    ]
    sizes = auto.result.cluster_sizes()
    for c, mean in sorted(cluster_means.items(), key=lambda kv: kv[1]):
        lines.append(f"{c:<9} {sizes[c]:<7} {mean:.1f}")
    lines += [
        "",
        f"worst/best cluster mean ratio: {ordered[-1] / ordered[0]:.2f}",
        "paper shape: clusters separate low vs high energy performance — holds",
    ]
    write_report("E4_clustering", lines)


def test_a2_elbow_stability_across_seeds(collection, benchmark):
    __, matrix = _case_study_matrix(collection)

    def chosen_k_for(seed: int) -> int:
        curve = {
            k: kmeans(matrix, k, n_init=2, seed=seed).sse for k in range(2, 9)
        }
        return choose_k_elbow(curve)

    ks = [chosen_k_for(seed) for seed in range(8)]
    benchmark.pedantic(chosen_k_for, args=(99,), rounds=1, iterations=1)

    values, counts = np.unique(ks, return_counts=True)
    modal_share = counts.max() / len(ks)
    assert modal_share >= 0.5  # the elbow is not a seed artifact
    assert max(values) - min(values) <= 3

    write_report(
        "A2_elbow_stability",
        [
            "A2 — elbow-K stability across K-means seeds (ablation)",
            f"seeds tested: {len(ks)}",
            f"chosen K per seed: {ks}",
            f"modal K: {int(values[np.argmax(counts)])} "
            f"(share {modal_share:.0%})",
        ],
    )
