"""E5 — footnote 4: CART discretization of U_w, U_o and ETAH on EP_H.

Paper footnote 4 publishes the dashboard's bins:

* U-value of windows, 4 classes:  [1.1, 2.05], (2.05, 2.45], (2.45, 3.35], (3.35, 5.5]
* U-value of opaque envelope, 3:  [0.15, 0.45], (0.45, 0.65], (0.65, 1.1]
* Global heating efficiency, 3:   [0.20, 0.60], (0.60, 0.80], (0.80, 1.1]

We fit the same CART-per-variable procedure (response: EP_H) on the
synthetic Turin stock and compare boundaries.  Expected shape: the same
number of ordered classes, with boundaries near the paper's published
values where the synthetic stock shares the Piedmont era structure; the
report quantifies each boundary's deviation honestly.
"""

import numpy as np
from conftest import write_report

from repro.analytics.discretize import PAPER_BINS, discretize_attribute
from repro.query import Comparison, Query, QueryEngine

PLAN = {"u_value_windows": 4, "u_value_opaque": 3, "eta_h": 3}


def test_e5_footnote4_bins(collection, benchmark):
    turin_e11 = QueryEngine(collection.table).execute(
        Query(
            where=Comparison("city", "==", "Turin")
            & Comparison("building_type", "==", "E.1.1")
        )
    ).table
    response = turin_e11["eph"]

    benchmark.pedantic(
        discretize_attribute,
        args=(turin_e11["u_value_windows"], response, 4),
        kwargs={"attribute": "u_value_windows"},
        rounds=3, iterations=1,
    )

    lines = ["E5 — footnote-4 discretization bins (CART on EP_H)", ""]
    max_deviation = {}
    for attr, n_classes in PLAN.items():
        disc = discretize_attribute(
            turin_e11[attr], response, n_classes, attribute=attr
        )
        paper_edges = PAPER_BINS[attr]
        paper_thresholds = paper_edges[1:-1]

        # shape: same class count, ordered thresholds
        assert disc.n_classes == n_classes
        assert list(disc.thresholds) == sorted(disc.thresholds)

        deviations = [
            min(abs(t - p) for p in paper_thresholds) for t in disc.thresholds
        ]
        max_deviation[attr] = max(deviations)
        lines += [
            f"{attr} ({n_classes} classes)",
            f"  paper thresholds:    {', '.join(f'{p:g}' for p in paper_thresholds)}",
            f"  measured thresholds: {', '.join(f'{t:.2f}' for t in disc.thresholds)}",
            f"  measured bins:       {disc.describe()}",
            f"  max |deviation| to nearest paper threshold: {max_deviation[attr]:.2f}",
            "",
        ]

        # the bins must order the response (that is what makes them useful)
        values = turin_e11[attr]
        labels = np.array([disc.label_of(v) if not np.isnan(v) else None for v in values])
        label_means = [
            float(np.nanmean(response[labels == lab])) for lab in disc.labels
        ]
        if attr == "eta_h":  # higher efficiency -> lower demand
            assert label_means == sorted(label_means, reverse=True)
        else:  # higher U-value -> higher demand
            assert label_means == sorted(label_means)

    # at least the plant-efficiency bins must land near the paper's
    assert max_deviation["eta_h"] < 0.15
    lines += [
        "paper shape: higher-U / lower-efficiency classes carry higher EP_H",
        "(verified above); boundary deviations reflect the synthetic stock's",
        "era calibration and are documented in EXPERIMENTS.md.",
    ]
    write_report("E5_discretization", lines)
