"""E1 — dataset statistics (paper, Section 3, first paragraph).

Paper: "The dataset includes approximately 25000 energy certificates, each
one characterized by 132 features, including energy and thermo-physical
attributes, divided into 89 categorical attributes and 43 quantitative
attributes."

This experiment generates the full-size synthetic collection, checks the
exact attribute split, and reports the headline statistics next to the
paper's.  The benchmark times full-collection generation.
"""

from conftest import write_report

from repro.dataset import SyntheticConfig, generate_epc_collection


def test_e1_dataset_statistics(benchmark):
    config = SyntheticConfig(n_certificates=25000, seed=2322)
    collection = benchmark.pedantic(
        generate_epc_collection, args=(config,), rounds=3, iterations=1
    )

    table = collection.table
    schema = collection.schema
    n_quant = len(schema.quantitative_names())
    n_cat = len(schema.categorical_names())
    years = sorted(set(int(y) for y in table["certificate_year"]))
    turin = sum(1 for c in table["city"] if c == "Turin")
    e11 = sum(1 for t in table["building_type"] if t == "E.1.1")

    # the paper's exact dataset shape
    assert table.n_rows == 25000
    assert table.n_columns == 132
    assert n_quant == 43
    assert n_cat == 89
    assert years == [2016, 2017, 2018]

    write_report(
        "E1_dataset",
        [
            "E1 — dataset statistics (paper Section 3 vs measured)",
            "metric                      paper        measured",
            f"certificates                ~25000       {table.n_rows}",
            f"attributes                  132          {table.n_columns}",
            f"  categorical               89           {n_cat}",
            f"  quantitative              43           {n_quant}",
            f"issue years                 2016-2018    {years[0]}-{years[-1]}",
            f"Turin certificates          (case study) {turin}",
            f"type E.1.1                  (case study) {e11}",
        ],
    )
