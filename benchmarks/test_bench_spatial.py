"""E10 — spatial structure of the energy maps (added experiment).

The paper's energy maps presuppose that energy performance is spatially
organized — otherwise a choropleth would show noise.  The paper argues
this visually; with ground truth we can test it: global Moran's I of the
per-neighbourhood mean EP_H must be significantly positive (the old,
demanding stock concentrates toward the city core, as in real Turin).
"""

import numpy as np
from conftest import write_report

from repro.analytics.spatial import morans_i_for_regions, region_adjacency
from repro.geo.regions import Granularity


def test_e10_morans_i(collection, benchmark):
    turin = collection.table.where(
        np.array([c == "Turin" for c in collection.table["city"]])
    )
    result = benchmark.pedantic(
        morans_i_for_regions,
        args=(turin, collection.hierarchy, Granularity.NEIGHBOURHOOD, "eph"),
        kwargs={"n_permutations": 499, "seed": 0},
        rounds=2, iterations=1,
    )

    assert result.statistic > result.expected
    assert result.is_clustered  # p < 0.05, positive autocorrelation

    names, weights = region_adjacency(collection.hierarchy, Granularity.NEIGHBOURHOOD)
    means = turin.aggregate("neighbourhood", "eph", np.mean)
    ordered = sorted(
        ((name, means.get(name, float("nan"))) for name in names),
        key=lambda kv: -kv[1],
    )

    write_report(
        "E10_spatial",
        [
            "E10 — Moran's I of per-neighbourhood mean EP_H (added experiment)",
            f"regions: {result.n_regions}",
            f"Moran's I: {result.statistic:.3f} "
            f"(E[I] under randomness: {result.expected:.3f})",
            f"permutation p-value: {result.p_value:.3f} "
            f"({result.n_permutations} permutations)",
            f"spatially clustered: {result.is_clustered}",
            "",
            "hottest neighbourhoods (mean EP_H, kWh/m2y):",
            *[f"  {name:<24} {value:6.1f}" for name, value in ordered[:5]],
            "",
            "shape: demand concentrates toward the old core — the premise",
            "that makes the paper's choropleth maps informative.",
        ],
    )
