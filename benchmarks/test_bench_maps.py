"""E7 + E8 — Figure 2: the four energy-map views.

Figure 2 shows (upper) a choropleth with per-certificate scatter markers
at neighbourhood and housing-unit zoom, and (lower) cluster-marker maps at
district and city zoom.  Reproduced shape:

* choropleth: one colored polygon per administrative area, color ordered
  by the area's mean value;
* scatter: one marker per certificate in the selected area;
* cluster-marker: marker label = aggregated cardinality; the drill-down
  from city to district strictly increases marker count while conserving
  the total number of aggregated certificates (the paper's zoom
  navigation).
"""

import numpy as np
from conftest import write_report

from repro.analytics.kmeans import kmeans, standardize
from repro.dashboard.maps import choropleth_map, cluster_marker_map, scatter_map
from repro.dataset.schema import PAPER_CLUSTERING_FEATURES
from repro.geo.regions import Granularity
from repro.query import Comparison, Query, QueryEngine, WithinRegion


def _turin_e11(collection):
    return QueryEngine(collection.table).execute(
        Query(
            where=Comparison("city", "==", "Turin")
            & Comparison("building_type", "==", "E.1.1")
        )
    ).table


def test_e7_choropleth_and_scatter(collection, benchmark):
    turin_e11 = _turin_e11(collection)
    hierarchy = collection.hierarchy

    # upper-left of Figure 2: neighbourhood-level choropleth of U_o
    means = turin_e11.aggregate("neighbourhood", "u_value_opaque", np.mean)
    means.pop(None, None)
    render = benchmark(
        choropleth_map, hierarchy, Granularity.NEIGHBOURHOOD, means, "u_value_opaque"
    )
    n_regions = len(hierarchy.neighbourhoods)
    assert render.svg.count("<polygon") == n_regions
    assert len(render.geojson["features"]) == n_regions

    # drill-down: scatter of each certificate inside one neighbourhood
    target = max(means, key=means.get)  # the worst-envelope area
    in_area = QueryEngine(turin_e11).execute(
        Query(where=WithinRegion(hierarchy, Granularity.NEIGHBOURHOOD, target))
    ).table
    scatter = scatter_map(
        in_area["latitude"], in_area["longitude"], in_area["u_value_windows"],
        "u_value_windows", hierarchy=hierarchy,
    )
    located = int(
        (~(np.isnan(in_area["latitude"]) | np.isnan(in_area["longitude"]))).sum()
    )
    assert scatter.svg.count("<circle") == located

    write_report(
        "E7_choropleth_scatter",
        [
            "E7 — Figure 2 (upper): choropleth + scatter views",
            f"neighbourhood choropleth polygons: {render.svg.count('<polygon')}"
            f" (regions: {n_regions})",
            f"worst-envelope neighbourhood: {target} "
            f"(mean U_o = {means[target]:.2f} W/m2K)",
            f"scatter markers in that area: {located} (one per located certificate)",
        ],
    )


def test_e8_cluster_marker_drilldown(collection, benchmark):
    turin_e11 = _turin_e11(collection)
    hierarchy = collection.hierarchy
    lat, lon = turin_e11["latitude"], turin_e11["longitude"]
    eph = turin_e11["eph"]

    matrix, __ = standardize(turin_e11.to_matrix(list(PAPER_CLUSTERING_FEATURES)))
    labels = kmeans(matrix, 4, n_init=2, seed=0).labels

    render_city = benchmark.pedantic(
        cluster_marker_map,
        args=(lat, lon, eph, "eph", Granularity.CITY),
        kwargs={"hierarchy": hierarchy, "cluster_labels": labels},
        rounds=3, iterations=1,
    )
    render_district = cluster_marker_map(
        lat, lon, eph, "eph", Granularity.DISTRICT,
        hierarchy=hierarchy, cluster_labels=labels,
    )

    city_markers = render_city.geojson["features"]
    district_markers = render_district.geojson["features"]
    assigned = int((labels >= 0).sum())

    # conservation + drill-down monotonicity (the paper's zoom behaviour)
    assert sum(f["properties"]["count"] for f in city_markers) == assigned
    assert sum(f["properties"]["count"] for f in district_markers) == assigned
    assert len(district_markers) > len(city_markers)
    # cardinality is printed inside markers
    assert all(str(f["properties"]["count"]) for f in city_markers)

    biggest = max(f["properties"]["count"] for f in city_markers)
    write_report(
        "E8_cluster_markers",
        [
            "E8 — Figure 2 (lower): cluster-marker maps",
            f"certificates aggregated:      {assigned}",
            f"markers at city zoom:         {len(city_markers)}",
            f"markers at district zoom:     {len(district_markers)}",
            f"largest city marker:          {biggest} certificates",
            "drill-down: marker count strictly increases, totals conserved",
        ],
    )
