"""Shared fixtures and reporting helpers for the experiment benchmarks.

Every ``test_bench_*`` module regenerates one table/figure of the paper
(see DESIGN.md, Experiment index).  Besides timing the underlying
operation with pytest-benchmark, each experiment writes a human-readable
report to ``benchmarks/results/<experiment>.txt`` with the same rows /
series the paper reports, so EXPERIMENTS.md can quote measured numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Collection size used by the analysis experiments (full 25k only where
#: the experiment is about the dataset itself).
BENCH_N = 8000
BENCH_SEED = 2322


@pytest.fixture(scope="session")
def collection():
    """The clean synthetic collection shared by the analysis experiments."""
    return generate_epc_collection(
        SyntheticConfig(n_certificates=BENCH_N, seed=BENCH_SEED)
    )


@pytest.fixture(scope="session")
def noisy(collection):
    """The corrupted view plus the ground-truth noise log."""
    return apply_noise(collection, NoiseConfig(seed=77))


@pytest.fixture(scope="session")
def turin_dirty(collection, noisy):
    """The dirty Turin subset with its row mapping into the full table."""
    mask = np.array([c == "Turin" for c in noisy.table["city"]])
    return noisy.table.where(mask), np.flatnonzero(mask)


def requires_cpus(n: int) -> bool:
    """Whether this host has enough cores for a hardware-sensitive gate.

    The multi-core experiments (A13 scaling, A14 latency, A16 sharding
    throughput) assert their performance gates only where the hardware
    can exhibit them; on smaller hosts they still assert every
    hardware-independent invariant and record the skip in their report.
    """
    return (os.cpu_count() or 1) >= n


def write_report(name: str, lines: list[str]) -> Path:
    """Persist one experiment's table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
