"""A1 — the phi-threshold ablation for Levenshtein acceptance.

The paper leaves phi "user-defined".  This ablation quantifies the
trade-off the user is making: a lower phi accepts more typo'd addresses
directly (fewer geocoder requests) but risks wrong associations; a higher
phi is safer but pushes load onto the metered fallback.  Ground truth
comes from the noise log.

Expected shape: resolution via Levenshtein matching decreases with phi,
geocoder load increases with phi, and street accuracy stays high in the
paper's operating range (phi ~ 0.8).
"""

import numpy as np
from conftest import write_report

from repro.preprocessing import (
    AddressCleaner,
    CleaningConfig,
    MatchStatus,
    SimulatedGeocoder,
)

PHIS = (0.50, 0.60, 0.70, 0.80, 0.90, 0.95)


def test_a1_phi_sweep(collection, turin_dirty, benchmark):
    turin, turin_rows = turin_dirty
    sample = turin.head(2000)
    sample_rows = turin_rows[:2000]

    def run(phi: float):
        cleaner = AddressCleaner(
            collection.street_map,
            CleaningConfig(phi=phi),
            SimulatedGeocoder(collection.street_map, quota=5000, error_rate=0.0, seed=1),
        )
        return cleaner.clean_table(sample)

    rows = []
    matched_series = []
    geocoded_series = []
    accuracy_series = []
    for phi in PHIS:
        report = run(phi)
        counts = {s: 0 for s in MatchStatus}
        for audit in report.audits:
            counts[audit.status] += 1
        resolved_ok = 0
        resolved = 0
        for audit in report.audits:
            if audit.status in (MatchStatus.EXACT, MatchStatus.MATCHED, MatchStatus.GEOCODED):
                resolved += 1
                truth = collection.street_map.records[
                    collection.gazetteer_index[sample_rows[audit.row]]
                ]
                if report.table["address"][audit.row] == truth.street:
                    resolved_ok += 1
        accuracy = resolved_ok / resolved if resolved else 0.0
        matched_series.append(counts[MatchStatus.MATCHED])
        geocoded_series.append(report.geocoder_requests)
        accuracy_series.append(accuracy)
        rows.append(
            f"{phi:<6} {counts[MatchStatus.EXACT]:<7} {counts[MatchStatus.MATCHED]:<9}"
            f" {counts[MatchStatus.GEOCODED]:<9} {counts[MatchStatus.UNRESOLVED]:<11}"
            f" {report.geocoder_requests:<10} {accuracy:.3f}"
        )

    benchmark.pedantic(run, args=(0.80,), rounds=1, iterations=1)

    # shape: Levenshtein acceptance shrinks and geocoder load grows with phi
    assert matched_series[0] >= matched_series[-1]
    assert geocoded_series[-1] >= geocoded_series[0]
    # accuracy stays high in the paper's operating range
    assert accuracy_series[PHIS.index(0.80)] > 0.95

    write_report(
        "A1_phi_sweep",
        [
            "A1 — phi threshold sweep (2000 dirty Turin rows, ablation)",
            "phi    exact   matched   geocoded  unresolved  geo_reqs   street_acc",
            *rows,
            "",
            "shape: raising phi moves typo'd addresses from direct Levenshtein",
            "acceptance to the metered geocoder; accuracy is already > 95% at",
            "the paper's default operating point (phi = 0.8).",
        ],
    )
