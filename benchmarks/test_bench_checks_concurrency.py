"""A15 — the concurrency sweep prices in, cold and warm.

The four LOCK002/LOCK003/LOCK004/SEM001 rules ride on the same per-file
facts as every other project rule, so adding them must not break the
analysis-cost contract: a cold full-tree sweep restricted to the
concurrency rules stays under the 5 s budget, and a warm run still
reuses every cached summary — the cross-module lock-order graph and
guarded-by inference are rebuilt from cached facts (dict merges plus one
Tarjan pass), never from re-parsed ASTs.
"""

import json
import time
from pathlib import Path

from conftest import write_report

import repro
from repro.checks import AnalysisCache, Checker, analysis_fingerprint
from repro.checks.model import all_rules

ROUNDS = 3
MAX_COLD_S = 5.0
MAX_WARM_S = 1.0
CODES = ("LOCK002", "LOCK003", "LOCK004", "SEM001")
SRC = Path(repro.__file__).parent


def _rules():
    return [rule for rule in all_rules() if rule.code in CODES]


def _sweep(cache_path):
    """``(elapsed_seconds, result)`` for one concurrency-only sweep."""
    rules = _rules()
    checker = Checker(
        rules=rules,
        cache=AnalysisCache(cache_path, analysis_fingerprint(rules)),
    )
    start = time.perf_counter()
    result = checker.run([SRC])
    return time.perf_counter() - start, result


def test_a15_concurrency_sweep_budgets(benchmark, tmp_path):
    assert len(_rules()) == len(CODES)
    cache_path = tmp_path / "checks-concurrency-cache.json"

    cold_s, cold = _sweep(cache_path)
    # the tree the benchmark prices must also be the tree the rules prove
    assert cold.ok, [f.render() for f in cold.findings]
    assert cold.n_from_cache == 0
    assert cold_s <= MAX_COLD_S, f"cold concurrency sweep took {cold_s:.2f}s"

    warm_times = []
    warm = None
    for __ in range(ROUNDS):
        elapsed, warm = _sweep(cache_path)
        warm_times.append(elapsed)
    best_warm = min(warm_times)

    # warm runs must be full cache reuse with identical verdicts
    assert warm.n_from_cache == warm.n_files == cold.n_files
    assert warm.findings == cold.findings
    assert best_warm <= MAX_WARM_S, (
        f"warm concurrency sweep took {best_warm:.2f}s over {warm.n_files} "
        f"files with a full cache — budget is {MAX_WARM_S:.1f}s"
    )

    benchmark.pedantic(lambda: _sweep(cache_path), rounds=1, iterations=1)

    speedup = cold_s / best_warm if best_warm > 0 else float("inf")
    payload = {
        "experiment": "A15_checks_concurrency",
        "files": cold.n_files,
        "rules": list(CODES),
        "rounds": ROUNDS,
        "cold_sweep_seconds": round(cold_s, 4),
        "best_warm_seconds": round(best_warm, 4),
        "speedup": round(speedup, 1),
        "cold_budget_seconds": MAX_COLD_S,
        "warm_budget_seconds": MAX_WARM_S,
        "cached_files_warm": warm.n_from_cache,
        "findings": len(warm.findings),
        "suppressed": warm.n_suppressed,
    }
    out = Path(__file__).parent / "results" / "BENCH_checks_concurrency.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A15_checks_concurrency",
        [
            f"A15 — concurrency contract sweep ({cold.n_files} files, "
            f"rules {', '.join(CODES)}, best warm of {ROUNDS})",
            "",
            f"cold sweep     {cold_s:.3f} s  (budget {MAX_COLD_S:.0f} s)",
            f"warm sweep     {best_warm:.3f} s  (budget {MAX_WARM_S:.1f} s)",
            f"speedup        {speedup:.1f}x  "
            f"({warm.n_from_cache}/{warm.n_files} files from cache)",
            f"findings       {len(warm.findings)} unsuppressed "
            f"({warm.n_suppressed} pragma-suppressed)",
            "",
            "the lock-order graph, guarded-by inference and semaphore",
            "balance flows are extracted once per file into cached facts;",
            "warm sweeps rebuild the cross-module model from those facts",
            "(dict merges + one Tarjan pass) without re-parsing anything.",
        ],
    )
