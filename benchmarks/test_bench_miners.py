"""A8 — Apriori vs FP-Growth on the case-study rules workload.

Both miners implement the same frequent-itemset definition (the test
suite property-checks exact support equality); this ablation compares
their runtime on the discretized Turin selection across support
thresholds.  Required shape: identical itemset sets at every threshold.

Runtime expectation, honestly stated: this repository's Apriori counts
supports with vectorized NumPy bitsets, which on a dense few-thousand-row
EPC workload beats the pointer-chasing pure-Python FP-tree; FP-Growth's
textbook advantage (no candidate generation) only pays off at much larger
transaction counts and lower supports than the case study needs.  The
report records both timings so the trade-off is visible.
"""

import time

from conftest import write_report

from repro.analytics.apriori import ItemsetMiner, transactions_from_table
from repro.analytics.discretize import discretize_table
from repro.analytics.fpgrowth import FpGrowthMiner
from repro.query import Comparison, Query, QueryEngine

PLAN = {"u_value_windows": 4, "u_value_opaque": 3, "eta_h": 3, "eph": 3}
EXTRA = ["energy_class", "heating_fuel", "glazing_type", "construction_period"]


def test_a8_apriori_vs_fpgrowth(collection, benchmark):
    turin_e11 = QueryEngine(collection.table).execute(
        Query(
            where=Comparison("city", "==", "Turin")
            & Comparison("building_type", "==", "E.1.1")
        )
    ).table
    discretized, __ = discretize_table(turin_e11, PLAN, response="eph")
    attributes = list(PLAN) + EXTRA
    transactions = transactions_from_table(discretized, attributes)

    rows = []
    for min_support in (0.20, 0.10, 0.05, 0.02):
        start = time.perf_counter()
        apriori = ItemsetMiner(min_support=min_support, max_length=4).mine(transactions)
        t_apriori = time.perf_counter() - start
        start = time.perf_counter()
        fp = FpGrowthMiner(min_support=min_support, max_length=4).mine(transactions)
        t_fp = time.perf_counter() - start
        assert set(fp.supports) == set(apriori.supports)  # same definition
        rows.append(
            f"{min_support:<10} {len(apriori):<10} {t_apriori * 1000:<14.0f}"
            f" {t_fp * 1000:<14.0f} {t_apriori / max(t_fp, 1e-9):.1f}x"
        )

    benchmark.pedantic(
        FpGrowthMiner(min_support=0.05, max_length=4).mine,
        args=(transactions,), rounds=3, iterations=1,
    )

    write_report(
        "A8_miners",
        [
            "A8 — Apriori vs FP-Growth on the rules workload "
            f"({len(transactions)} transactions, {len(attributes)} attributes)",
            "min_sup    itemsets   apriori_ms     fpgrowth_ms    speedup",
            *rows,
            "",
            "shape: identical itemset sets at every threshold (asserted).",
            "timing: the vectorized-bitset Apriori wins at case-study scale;",
            "FP-Growth is provided for the large-registry regime and as an",
            "independent implementation that cross-checks Apriori's output.",
        ],
    )
