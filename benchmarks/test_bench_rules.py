"""E6 + A3 — Figure 4's association-rule table and the threshold ablation.

Paper (Section 2.2.2): rules are mined on the discretized attributes with
constraints on support / confidence / lift / conviction, then shown top-k
in a tabular view so the analyst can "detect the attributes which
influence most the energy performance of buildings".  Shape to reproduce:

* rules of the form {bad envelope / inefficient plant} -> {EP_H = High}
  and {good envelope / efficient plant} -> {EP_H = Low} surface with
  lift > 1;
* tightening min-support monotonically shrinks the rule set (A3).
"""

from conftest import write_report

from repro.analytics.discretize import discretize_table
from repro.analytics.rules import RuleConstraints, RuleMiner, RuleTemplate
from repro.query import Comparison, Query, QueryEngine

PLAN = {"u_value_windows": 4, "u_value_opaque": 3, "eta_h": 3, "eph": 3}
ATTRIBUTES = list(PLAN)


def _discretized_case_study(collection):
    turin_e11 = QueryEngine(collection.table).execute(
        Query(
            where=Comparison("city", "==", "Turin")
            & Comparison("building_type", "==", "E.1.1")
        )
    ).table
    discretized, __ = discretize_table(turin_e11, PLAN, response="eph")
    return discretized


def test_e6_rule_mining(collection, benchmark):
    discretized = _discretized_case_study(collection)
    miner = RuleMiner(
        RuleConstraints(min_support=0.05, min_confidence=0.6, min_lift=1.0),
        RuleTemplate(consequent_attributes=("eph",)),
    )
    rules = benchmark.pedantic(
        miner.mine, args=(discretized, ATTRIBUTES), rounds=3, iterations=1
    )

    assert rules
    top = RuleMiner.top_k(rules, 10, by="lift")
    assert all(r.lift > 1.0 for r in top)

    # the physics must surface: efficient stock -> low demand, and the
    # converse, both with positive correlation
    def has_rule(antecedent_contains: str, consequent_value: str) -> bool:
        return any(
            any(antecedent_contains in str(i) for i in r.antecedent)
            and any(str(i) == f"eph={consequent_value}" for i in r.consequent)
            for r in rules
        )

    assert has_rule("u_value_opaque=Low", "Low") or has_rule("eta_h=High", "Low")
    assert has_rule("u_value_opaque=High", "High") or has_rule("eta_h=Low", "High")

    lines = [
        "E6 — Figure 4 rules table (defaults: sup>=0.05, conf>=0.6, lift>=1)",
        f"rules mined: {len(rules)}",
        "",
        "top 10 by lift:",
        "rule                                                       sup    conf   lift",
    ]
    for r in top:
        lines.append(f"{str(r):<58} {r.support:.3f}  {r.confidence:.3f}  {r.lift:.2f}")
    write_report("E6_rules", lines)


def test_a3_support_threshold_sweep(collection, benchmark):
    discretized = _discretized_case_study(collection)

    def count_rules(min_support: float) -> int:
        miner = RuleMiner(
            RuleConstraints(min_support=min_support, min_confidence=0.6, min_lift=1.0),
            RuleTemplate(consequent_attributes=("eph",)),
        )
        return len(miner.mine(discretized, ATTRIBUTES))

    supports = (0.01, 0.02, 0.05, 0.10, 0.20, 0.30)
    counts = [count_rules(s) for s in supports]
    benchmark.pedantic(count_rules, args=(0.05,), rounds=3, iterations=1)

    # monotone: a stricter support threshold can only lose rules
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert counts[0] > counts[-1]

    write_report(
        "A3_support_sweep",
        [
            "A3 — rule count vs minimum support (ablation)",
            "min_support   rules",
            *[f"{s:<13} {c}" for s, c in zip(supports, counts)],
            "",
            "shape: monotone non-increasing — matches Apriori theory; the",
            "paper exposes these thresholds as user-tunable defaults.",
        ],
    )
