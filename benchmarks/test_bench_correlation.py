"""E3 — Figure 3: the correlation plot matrix of the five case-study features.

Paper: "In Figure 3, the correlation plot matrix between the considered
attribute pairs is reported. ... All the variables considered in the
analysis are weakly correlated (i.e., there is no evident linear
association between variable pairs).  Hence, the results obtained from the
five attributes selected for the clustering phase (i.e., S/V, Uo, Uw, Sr
and ETAH) ... allow the extraction of non-trivial knowledge from data."

The experiment reproduces the matrix on the Turin E.1.1 selection and
asserts the figure's claim: every off-diagonal |rho| stays weak.  The
benchmark times matrix computation; the report contains the full matrix
and its gray-level encoding check.
"""

import numpy as np
from conftest import write_report

from repro.analytics.correlation import correlation_matrix
from repro.dashboard.charts import correlation_matrix_chart
from repro.dataset.schema import PAPER_CLUSTERING_FEATURES
from repro.query import Comparison, Query, QueryEngine

FEATURES = list(PAPER_CLUSTERING_FEATURES)


def test_e3_figure3_correlation_matrix(collection, benchmark):
    turin_e11 = QueryEngine(collection.table).execute(
        Query(
            where=Comparison("city", "==", "Turin")
            & Comparison("building_type", "==", "E.1.1")
        )
    ).table

    matrix = benchmark(correlation_matrix, turin_e11, FEATURES)

    # Figure 3's headline: no evident linear correlation between any pair
    assert matrix.is_eligible(threshold=0.5)
    assert matrix.max_abs_off_diagonal() < 0.5

    # the chart must encode the diagonal black and weak pairs light
    svg = correlation_matrix_chart(matrix)
    assert "#000000" in svg  # diagonal rho = 1

    header = "          " + "  ".join(f"{n[:8]:>8}" for n in FEATURES)
    rows = [header]
    for i, name in enumerate(FEATURES):
        cells = "  ".join(f"{matrix.matrix[i, j]:8.3f}" for j in range(len(FEATURES)))
        rows.append(f"{name[:10]:<10}{cells}")

    write_report(
        "E3_correlation",
        [
            "E3 — Figure 3: Pearson correlation matrix (Turin, E.1.1)",
            f"rows analyzed: {turin_e11.n_rows}",
            "",
            *rows,
            "",
            f"max |rho| off-diagonal: {matrix.max_abs_off_diagonal():.3f}",
            "paper: all pairs weakly correlated -> feature set eligible: "
            f"{matrix.is_eligible()}",
        ],
    )
