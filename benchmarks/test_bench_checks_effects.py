"""A17 — the effect sweep and the runtime audit price in.

Three budgets keep the effect tier honest:

* a cold full-tree sweep restricted to the four effect rules
  (CACHE002/DET004/FAULT002/PURE001) stays under 5 s — per-function
  effect extraction rides the same single AST walk as every other fact;
* a warm run with a full analysis cache stays under 100 ms — the
  interprocedural :class:`EffectModel` fixpoint is rebuilt from cached
  facts (set unions over a worklist), never from re-parsed ASTs;
* the runtime effect audit adds **under 10%** wall clock to the real
  8000-certificate pipeline — the proxies are attribute lookups plus a
  thread-local stack peek, so an audited production run stays cheap
  enough to leave on.
"""

import json
import os
import time
from pathlib import Path

from conftest import write_report

import repro
from repro import Indice, IndiceConfig
from repro.checks import AnalysisCache, Checker, analysis_fingerprint
from repro.checks import effectaudit
from repro.checks.model import all_rules
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)

ROUNDS = 3
MAX_COLD_S = 5.0
MAX_WARM_S = 0.1
MAX_AUDIT_OVERHEAD = 0.10
#: absolute slack so a ~5 s pipeline's scheduler jitter cannot flake the gate
AUDIT_SLACK_S = 0.25
CODES = ("CACHE002", "DET004", "FAULT002", "PURE001")
PIPELINE_N = 8000
SRC = Path(repro.__file__).parent


def _rules():
    return [rule for rule in all_rules() if rule.code in CODES]


def _sweep(cache_path):
    """``(elapsed_seconds, result)`` for one effects-only sweep."""
    rules = _rules()
    checker = Checker(
        rules=rules,
        cache=AnalysisCache(cache_path, analysis_fingerprint(rules)),
    )
    start = time.perf_counter()
    result = checker.run([SRC])
    return time.perf_counter() - start, result


def _pipeline_seconds():
    """Wall clock of one preprocess+analyze over the 8000-cert collection."""
    collection = generate_epc_collection(
        SyntheticConfig(n_certificates=PIPELINE_N, seed=17)
    )
    noisy = apply_noise(collection, NoiseConfig(seed=18))
    collection.table = noisy.table
    engine = Indice(collection, IndiceConfig(kmeans_n_init=2, k_range=(2, 4)))
    start = time.perf_counter()
    engine.preprocess()
    engine.analyze()
    return time.perf_counter() - start


def test_a17_effects_sweep_and_audit_budgets(benchmark, tmp_path):
    assert len(_rules()) == len(CODES)
    cache_path = tmp_path / "checks-effects-cache.json"

    cold_s, cold = _sweep(cache_path)
    # the tree the benchmark prices must also be the tree the rules prove
    assert cold.ok, [f.render() for f in cold.findings]
    assert cold.n_from_cache == 0
    assert cold_s <= MAX_COLD_S, f"cold effects sweep took {cold_s:.2f}s"

    warm_times = []
    warm = None
    for __ in range(ROUNDS):
        elapsed, warm = _sweep(cache_path)
        warm_times.append(elapsed)
    best_warm = min(warm_times)
    assert warm.n_from_cache == warm.n_files == cold.n_files
    assert warm.findings == cold.findings
    assert best_warm <= MAX_WARM_S, (
        f"warm effects sweep took {best_warm * 1000:.0f}ms over "
        f"{warm.n_files} files with a full cache — budget is "
        f"{MAX_WARM_S * 1000:.0f}ms"
    )

    # -- audit overhead on the real pipeline --------------------------------
    assert not effectaudit.enabled()
    baseline_s = min(_pipeline_seconds() for __ in range(2))
    os.environ[effectaudit.ENV_FLAG] = "1"
    try:
        effectaudit.DEFAULT.reset()
        audited_s = min(_pipeline_seconds() for __ in range(2))
        observed = {
            name: sorted(tokens)
            for name, tokens in effectaudit.DEFAULT.observed.items()
        }
    finally:
        del os.environ[effectaudit.ENV_FLAG]
        effectaudit.DEFAULT.uninstall()
    assert set(observed) == {"preprocess", "analyze"}
    overhead = (audited_s - baseline_s) / baseline_s
    assert audited_s <= baseline_s * (1 + MAX_AUDIT_OVERHEAD) + AUDIT_SLACK_S, (
        f"audited pipeline took {audited_s:.2f}s vs {baseline_s:.2f}s "
        f"baseline ({overhead:+.1%}) — budget is {MAX_AUDIT_OVERHEAD:.0%}"
    )

    benchmark.pedantic(lambda: _sweep(cache_path), rounds=1, iterations=1)

    speedup = cold_s / best_warm if best_warm > 0 else float("inf")
    payload = {
        "experiment": "A17_checks_effects",
        "files": cold.n_files,
        "rules": list(CODES),
        "rounds": ROUNDS,
        "cold_sweep_seconds": round(cold_s, 4),
        "best_warm_seconds": round(best_warm, 4),
        "speedup": round(speedup, 1),
        "cold_budget_seconds": MAX_COLD_S,
        "warm_budget_seconds": MAX_WARM_S,
        "findings": len(warm.findings),
        "suppressed": warm.n_suppressed,
        "pipeline_certificates": PIPELINE_N,
        "pipeline_baseline_seconds": round(baseline_s, 3),
        "pipeline_audited_seconds": round(audited_s, 3),
        "audit_overhead": round(overhead, 4),
        "audit_overhead_budget": MAX_AUDIT_OVERHEAD,
        "observed_effects": observed,
    }
    out = Path(__file__).parent / "results" / "BENCH_checks_effects.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A17_checks_effects",
        [
            f"A17 — effect & purity sweep ({cold.n_files} files, rules "
            f"{', '.join(CODES)}, best warm of {ROUNDS}) + runtime audit",
            "",
            f"cold sweep       {cold_s:.3f} s  (budget {MAX_COLD_S:.0f} s)",
            f"warm sweep       {best_warm * 1000:.0f} ms  "
            f"(budget {MAX_WARM_S * 1000:.0f} ms)",
            f"speedup          {speedup:.1f}x  "
            f"({warm.n_from_cache}/{warm.n_files} files from cache)",
            f"findings         {len(warm.findings)} unsuppressed "
            f"({warm.n_suppressed} pragma-suppressed)",
            "",
            f"pipeline ({PIPELINE_N} certs)  baseline {baseline_s:.2f} s, "
            f"audited {audited_s:.2f} s ({overhead:+.1%}, "
            f"budget {MAX_AUDIT_OVERHEAD:.0%})",
            "",
            "per-function effect summaries ride the shared fact walk; warm",
            "sweeps rebuild the interprocedural fixpoint from cached facts",
            "(set unions over a worklist) without re-parsing anything, and",
            "the runtime proxies are attribute forwards plus one",
            "thread-local stack peek per ambient read.",
        ],
    )
