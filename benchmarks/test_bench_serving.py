"""A14 — production serving tier under a 200-client load.

The serving tier's claim is architectural: once an analysis version is
pre-rendered into immutable, content-addressed artifacts, request cost is
a dict read plus a socket write — so a fixed worker pool should sustain
hundreds of concurrent clients with flat tail latency, and a cold burst
should cost exactly one render per artifact (single-flight coalescing).

This experiment drives ``>= 200`` concurrent keep-alive clients against a
:class:`~repro.serving.PooledHTTPServer`, mixing full GETs with
conditional revalidations (the steady-state traffic shape strong ETags
are for), and publishes p50/p99 latency and throughput to
``BENCH_serving.json``.

Latency/throughput gates only run on hosts with ``cpu_count() >= 4`` —
a single-core container timeshares 200 clients against the pool and the
numbers say nothing about the architecture.  The hardware-independent
invariants (every response well-formed, one render per artifact, correct
304 discipline) are asserted everywhere.
"""

import http.client
import json
import os
import threading
import time
from pathlib import Path

import numpy as np
from conftest import requires_cpus, write_report

from repro import Indice, IndiceConfig
from repro.dataset import SyntheticConfig, generate_epc_collection
from repro.serving import ArtifactServer, build_store

BENCH_N = 2000
CLIENTS = 200
REQUESTS_PER_CLIENT = 10
WORKERS = 16


def _make_engine() -> Indice:
    collection = generate_epc_collection(
        SyntheticConfig(n_certificates=BENCH_N, seed=5)
    )
    engine = Indice(
        collection,
        IndiceConfig(
            kmeans_n_init=2, k_range=(2, 5), run_multivariate_outliers=False
        ),
    )
    engine.preprocess()
    engine.analyze()
    return engine


class _Client(threading.Thread):
    """One keep-alive client: full GETs, then conditional revalidations."""

    def __init__(self, index, port, paths, barrier):
        super().__init__(daemon=True)
        self.index = index
        self.port = port
        self.paths = paths
        self.barrier = barrier
        self.latencies: list[float] = []
        self.statuses: list[int] = []
        self.error: Exception | None = None

    def run(self):
        etags: dict[str, str] = {}
        try:
            # a straggler waits for a pool slot behind every earlier
            # keep-alive session — the gate on its patience is the wall
            # clock below, not a per-socket timeout
            conn = http.client.HTTPConnection(
                "127.0.0.1", self.port, timeout=300
            )
            self.barrier.wait()
            for i in range(REQUESTS_PER_CLIENT):
                path = self.paths[(self.index + i) % len(self.paths)]
                headers = {"Accept-Encoding": "gzip"}
                if path in etags:
                    headers["If-None-Match"] = etags[path]
                start = time.perf_counter()
                conn.request("GET", path, headers=headers)
                response = conn.getresponse()
                response.read()
                self.latencies.append(time.perf_counter() - start)
                self.statuses.append(response.status)
                etag = response.getheader("ETag")
                if etag:
                    etags[path] = etag
            conn.close()
        except Exception as exc:  # pragma: no cover - surfaced by the test
            self.error = exc


def test_a14_serving_load(benchmark):
    cpu = os.cpu_count() or 1
    engine = _make_engine()
    store = build_store(engine)
    server = ArtifactServer(store, max_inflight=256)

    with server.serving(workers=WORKERS) as (httpd, __):
        port = httpd.server_address[1]
        paths = list(store.paths())

        # cold burst first: the pool renders each artifact exactly once
        wall_start = time.perf_counter()
        barrier = threading.Barrier(CLIENTS)
        clients = [
            _Client(index, port, paths, barrier) for index in range(CLIENTS)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=300)
        wall = time.perf_counter() - wall_start

        # one quick pedantic round for the pytest-benchmark ledger
        def steady_state_sample():
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
            for path in paths:
                conn.request("GET", path)
                conn.getresponse().read()
            conn.close()

        benchmark.pedantic(steady_state_sample, rounds=1, iterations=1)

    errors = [client.error for client in clients if client.error]
    assert not errors, f"client failures: {errors[:3]}"

    latencies = np.array(
        [lat for client in clients for lat in client.latencies]
    )
    statuses = [s for client in clients for s in client.statuses]
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(statuses) == total

    # every response is a cache hit or a revalidation — never an error
    by_status = {s: statuses.count(s) for s in sorted(set(statuses))}
    assert set(by_status) <= {200, 304}, by_status
    assert by_status.get(304, 0) > 0, "conditional traffic never revalidated"

    # coalescing under the cold burst: one render per artifact, period
    renders = {path: store.render_count(path) for path in paths}
    assert all(count == 1 for count in renders.values()), renders
    assert store.render_attempts == len(paths)
    assert server.stats["shed"] == 0  # max_inflight=256 never saturated

    p50_ms = float(np.percentile(latencies, 50) * 1000)
    p99_ms = float(np.percentile(latencies, 99) * 1000)
    req_per_s = total / wall

    latency_gates = requires_cpus(4)
    if latency_gates:
        # generous SLOs: the point is flat tails, not absolute speed
        assert p50_ms < 250, f"p50 {p50_ms:.1f} ms"
        assert p99_ms < 2000, f"p99 {p99_ms:.1f} ms"
        assert req_per_s > 100, f"{req_per_s:.0f} req/s"

    payload = {
        "experiment": "A14_serving",
        "certificates": BENCH_N,
        "cpu_count": cpu,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "total_requests": total,
        "workers": WORKERS,
        "max_inflight": server.max_inflight,
        "latency_gates_evaluated": latency_gates,
        "p50_ms": round(p50_ms, 2),
        "p99_ms": round(p99_ms, 2),
        "requests_per_second": round(req_per_s, 1),
        "wall_seconds": round(wall, 3),
        "responses_by_status": {str(k): v for k, v in by_status.items()},
        "renders_by_path": renders,
        "analysis_version": store.version,
    }
    out = Path(__file__).parent / "results" / "BENCH_serving.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A14_serving",
        [
            f"A14 — serving tier load ({CLIENTS} concurrent keep-alive "
            f"clients x {REQUESTS_PER_CLIENT} requests, {WORKERS} workers, "
            f"cpu_count={cpu})",
            "",
            f"total requests   {total}",
            f"wall clock       {wall:.2f} s",
            f"throughput       {req_per_s:.0f} req/s",
            f"latency p50      {p50_ms:.1f} ms",
            f"latency p99      {p99_ms:.1f} ms",
            f"status mix       {by_status}",
            f"renders          {sum(renders.values())} "
            f"({len(paths)} artifacts, single-flight coalesced)",
            ""
            if latency_gates
            else "note: cpu_count < 4, latency gates not evaluated on this "
            "host (200 timeshared clients say nothing about the pool).",
        ],
    )
