"""A10 — fault-injection hooks cost nothing when injection is disabled.

The resilience tier threads ``if injector is None`` guards (and, with an
injector built from an *empty* plan, one dictionary miss per arrival)
through the geocoder, the stage cache and the parallel executor.  The
promise is that a production run — no ``--fault-plan`` — pays effectively
nothing for carrying the hooks.  This experiment measures the full cold
pipeline with no injector vs. an empty-plan injector, best-of-3 per arm,
and asserts the difference stays under 2% (plus a small absolute epsilon,
since two ~3 s wall-clock runs are never perfectly stable).
"""

import json
import time
from pathlib import Path

from conftest import write_report

from repro import Indice, IndiceConfig
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.faults import FaultInjector, FaultPlan

BENCH_N = 8000
ROUNDS = 3
MAX_OVERHEAD = 0.02       # 2% relative ...
EPSILON_S = 0.15          # ... plus measurement-noise headroom


def _make_collection():
    collection = generate_epc_collection(
        SyntheticConfig(n_certificates=BENCH_N, seed=5)
    )
    noisy = apply_noise(collection, NoiseConfig(seed=5))
    collection.table = noisy.table
    return collection


def _config() -> IndiceConfig:
    return IndiceConfig(
        kmeans_n_init=2, k_range=(2, 6),
        run_multivariate_outliers=False, stage_cache=False,
    )


def _time_pipeline(collection, injector):
    """``(elapsed_seconds, addresses)`` for one cold end-to-end run."""
    engine = Indice(collection, _config(), injector=injector)
    start = time.perf_counter()
    preprocessed = engine.preprocess()
    engine.analyze()
    return time.perf_counter() - start, list(preprocessed.table["address"])


def test_a10_disabled_hooks_overhead(benchmark):
    collection = _make_collection()

    arms = {
        "no_injector": lambda: None,
        "empty_plan": lambda: FaultInjector(FaultPlan()),
    }
    best: dict[str, float] = {}
    outputs: dict[str, list] = {}
    for name, make_injector in arms.items():
        times = []
        for __ in range(ROUNDS):
            elapsed, addresses = _time_pipeline(collection, make_injector())
            times.append(elapsed)
            outputs[name] = addresses
        best[name] = min(times)

    # hooks must be invisible in results, not just in time
    assert outputs["no_injector"] == outputs["empty_plan"]

    overhead = best["empty_plan"] - best["no_injector"]
    overhead_pct = overhead / best["no_injector"]
    assert best["empty_plan"] <= (
        best["no_injector"] * (1.0 + MAX_OVERHEAD) + EPSILON_S
    ), (
        f"dormant fault hooks cost {overhead_pct:+.1%} "
        f"({best['no_injector']:.2f}s -> {best['empty_plan']:.2f}s)"
    )

    benchmark.pedantic(
        lambda: _time_pipeline(collection, None),
        rounds=1,
        iterations=1,
    )

    payload = {
        "experiment": "A10_faults",
        "certificates": BENCH_N,
        "rounds": ROUNDS,
        "no_injector_seconds": round(best["no_injector"], 4),
        "empty_plan_seconds": round(best["empty_plan"], 4),
        "overhead_seconds": round(overhead, 4),
        "overhead_pct": round(overhead_pct * 100, 2),
    }
    out = Path(__file__).parent / "results" / "BENCH_faults.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A10_faults",
        [
            f"A10 — disabled fault-hook overhead ({BENCH_N} certificates, "
            f"best of {ROUNDS})",
            "",
            "arm            seconds",
            f"no injector    {best['no_injector']:.3f}",
            f"empty plan     {best['empty_plan']:.3f}",
            "",
            f"overhead: {overhead:+.3f} s ({overhead_pct:+.1%})",
            "outputs verified identical between arms (addresses).",
            "a dormant hook is one `is None` check (no injector) or one",
            "dict miss per arrival (empty plan) — both below noise.",
        ],
    )
