"""A9 — parallel cleaning tier, indexed matching and stage-cache wins.

The perf layer added on top of the pipeline promises three things: the
indexed gazetteer matcher keeps serial throughput high, ``n_jobs > 1``
never changes results while sharding the Levenshtein-heavy work, and the
content-hash stage cache turns repeated ``preprocess()``/``analyze()``
calls into hash lookups.  This experiment measures all three on the same
collection and writes both a machine-readable ``BENCH_parallel.json``
and the human-readable ``A9_parallel.txt`` summary.
"""

import json
import time
from pathlib import Path

from conftest import write_report

from repro import Indice, IndiceConfig
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)

BENCH_N = 8000
JOB_COUNTS = (1, 2, 4)


def _make_collection():
    collection = generate_epc_collection(
        SyntheticConfig(n_certificates=BENCH_N, seed=5)
    )
    noisy = apply_noise(collection, NoiseConfig(seed=5))
    collection.table = noisy.table
    return collection


def _config(**overrides) -> IndiceConfig:
    base = dict(
        kmeans_n_init=2, k_range=(2, 6), run_multivariate_outliers=False
    )
    base.update(overrides)
    return IndiceConfig(**base)


def _time_pipeline(collection, config):
    """``(elapsed_seconds, preprocessing_outcome)`` for one cold run."""
    engine = Indice(collection, config)
    start = time.perf_counter()
    preprocessed = engine.preprocess()
    engine.analyze()
    return time.perf_counter() - start, preprocessed


def test_a9_parallel_and_cache(benchmark):
    collection = _make_collection()

    # cold runs, stage cache off, per worker count
    cold: dict[int, float] = {}
    reference = None
    for jobs in JOB_COUNTS:
        elapsed, preprocessed = _time_pipeline(
            collection, _config(stage_cache=False, n_jobs=jobs)
        )
        cold[jobs] = elapsed
        addresses = list(preprocessed.table["address"])
        if reference is None:
            reference = addresses
        else:  # parallel output must be bit-identical to serial
            assert addresses == reference

    # cold vs warm with the stage cache on (same engine, repeated calls)
    cached_engine = Indice(collection, _config(stage_cache=True))
    start = time.perf_counter()
    cached_engine.preprocess()
    cached_engine.analyze()
    cache_cold = time.perf_counter() - start
    start = time.perf_counter()
    cached_engine.preprocess()
    cached_engine.analyze()
    cache_warm = time.perf_counter() - start
    assert cached_engine.cache.hits >= 2
    speedup = cache_cold / max(cache_warm, 1e-9)
    # the columnar shm tier roughly halved the cold run, so the warm
    # ratio's denominator stayed put while its numerator shrank; 5x still
    # proves the cache turns stages into hash lookups
    assert speedup >= 5.0, f"warm cache only {speedup:.1f}x faster"

    benchmark.pedantic(
        lambda: _time_pipeline(collection, _config(stage_cache=False)),
        rounds=1,
        iterations=1,
    )

    payload = {
        "experiment": "A9_parallel",
        "certificates": BENCH_N,
        "cold_seconds_by_jobs": {str(j): round(cold[j], 4) for j in JOB_COUNTS},
        "certs_per_second_by_jobs": {
            str(j): round(BENCH_N / cold[j], 1) for j in JOB_COUNTS
        },
        "cache_cold_seconds": round(cache_cold, 4),
        "cache_warm_seconds": round(cache_warm, 4),
        "warm_speedup": round(speedup, 1),
    }
    out = Path(__file__).parent / "results" / "BENCH_parallel.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A9_parallel",
        [
            "A9 — parallel cleaning tier + stage cache "
            f"({BENCH_N} certificates)",
            "",
            "cold pipeline (stage cache off)",
            "n_jobs   seconds   certs/second",
            *[
                f"{j:<8} {cold[j]:<9.2f} {BENCH_N / cold[j]:.0f}"
                for j in JOB_COUNTS
            ],
            "",
            "stage cache (preprocess + analyze, same engine)",
            f"cold   {cache_cold:.3f} s",
            f"warm   {cache_warm:.3f} s   ({speedup:.0f}x faster)",
            "",
            "parallel runs verified bit-identical to serial (addresses).",
            "note: single-core hosts see no n_jobs win; the speedup there",
            "comes from the indexed matcher and the cache.",
        ],
    )
