"""A16 — sharded million-certificate pipeline tier.

The paper's case study is ~25k Turin certificates; the ROADMAP north
star is a tier that serves millions.  The sharded runner's claim has
three measurable parts:

1. **Out-of-core memory ceiling** — peak RSS of the sharded run is
   bounded by the largest shard's working set (plus the narrow merged
   projection), not by the dataset: measured here as < 2x the RSS of
   processing the largest shard alone, and strictly below the monolithic
   run's RSS.
2. **Incremental warm re-runs** — after invalidating a single shard, a
   warm re-run recomputes that one shard and reuses everything else
   (shard-granular cache + post-merge memo): >= 10x faster than cold.
3. **Bit-identity** — none of that perf machinery changes a byte: at 25k
   scale the sharded output satisfies ``Table.__eq__`` against the
   monolithic serial pipeline over the same rows.

Every pipeline run that feeds an RSS number executes in a subprocess so
``ru_maxrss`` isolates it; results go to ``BENCH_sharded.json`` and
``A16_sharded.txt``.  The full experiment defaults to 1M certificates
(tens of minutes on one core) and is opt-in via ``pytest -m bench``;
``REPRO_SHARD_BENCH_N`` scales it down for smoke runs.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from conftest import write_report

from repro import Indice, IndiceConfig
from repro.dataset import NoiseConfig, SyntheticConfig
from repro.perf.shards import ShardPlan

pytestmark = pytest.mark.bench

BENCH_N = int(os.environ.get("REPRO_SHARD_BENCH_N", "1000000"))
EQUIV_N = 25_000
BENCH_SEED = 414
#: High enough that the geocoder quota never binds — the documented
#: regime in which sharded output is provably bit-identical.
QUOTA = 10**9

SRC = Path(__file__).resolve().parent.parent / "src"

_CHILD = r"""
import dataclasses, json, resource, sys, time

mode, n, spill_dir, seed = sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4])

from repro import Indice, IndiceConfig
from repro.dataset import NoiseConfig, SyntheticConfig
from repro.perf.cache import StageCache
from repro.perf.shards import ShardPlan


def config(**overrides):
    base = dict(geocoder_quota=10**9, stage_cache=False)
    base.update(overrides)
    return IndiceConfig(**base)


def maxrss_mb():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


defaults = IndiceConfig()
narrow = tuple(
    dict.fromkeys(
        list(defaults.features)
        + [defaults.response, "city", "building_type", "district",
           "certificate_id"]
    )
)
plan = ShardPlan.from_generator(
    SyntheticConfig(n_certificates=n, seed=seed), "by-district",
    noise=NoiseConfig(seed=seed + 1), columns=narrow,
)
out = {"mode": mode, "n": n, "shards": len(plan.shards)}

if mode == "monolithic":
    start = time.perf_counter()
    table = plan.merged_input_table()
    out["generate_s"] = time.perf_counter() - start
    collection = dataclasses.replace(plan.collection, table=table)
    engine = Indice(collection, config())
    start = time.perf_counter()
    preprocessing = engine.preprocess()
    engine.analyze()
    out["pipeline_s"] = time.perf_counter() - start
    out["rows_out"] = preprocessing.table.n_rows
elif mode == "largest-shard":
    spec = max(plan.shards, key=lambda s: s.n_rows)
    out["shard_key"] = spec.key
    out["shard_rows"] = spec.n_rows
    table = plan.extract(spec)
    collection = dataclasses.replace(plan.collection, table=table)
    preprocessing = Indice(collection, config()).preprocess()
    out["rows_out"] = preprocessing.table.n_rows
elif mode == "sharded":
    import pathlib
    cache = StageCache()
    cfg = config(stage_cache=True, spill_dir=spill_dir)
    start = time.perf_counter()
    cold = Indice(plan.collection, cfg, cache=cache).run_sharded(plan)
    out["cold_s"] = time.perf_counter() - start
    out["rows_out"] = cold.preprocessing.table.n_rows
    out["largest_shard_rows"] = max(s.rows for s in cold.shard_stats)
    out["spill_bytes"] = sum(s.spill_bytes for s in cold.shard_stats)
    # invalidate exactly one shard's cached artifact, then re-run warm:
    # that shard is recomputed, every sibling hits, and the post-merge
    # memo reuses the fences/DBSCAN/merge work
    victim = sorted(pathlib.Path(spill_dir).glob("*.spill"))[0]
    blob = bytearray(victim.read_bytes())
    blob[-10] ^= 0xFF
    victim.write_bytes(bytes(blob))
    start = time.perf_counter()
    warm = Indice(plan.collection, cfg, cache=cache).run_sharded(plan)
    out["warm_s"] = time.perf_counter() - start
    out["warm_rows_out"] = warm.preprocessing.table.n_rows
    out["shard_hits"] = cache.shard_hits
    out["shard_misses"] = cache.shard_misses
else:
    raise SystemExit(f"unknown mode {mode!r}")

out["maxrss_mb"] = maxrss_mb()
print(json.dumps(out))
"""


def _run_child(mode: str, n: int, spill_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(n), spill_dir, str(BENCH_SEED)],
        capture_output=True,
        text=True,
        env=env,
        timeout=7200,
    )
    assert proc.returncode == 0, f"{mode} child failed:\n{proc.stderr[-4000:]}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _equivalence_gate(tmp_path: Path) -> dict:
    """25k sharded vs monolithic serial: ``Table.__eq__`` bit-identity."""
    plan = ShardPlan.from_generator(
        SyntheticConfig(n_certificates=EQUIV_N, seed=BENCH_SEED),
        "by-district",
        noise=NoiseConfig(seed=BENCH_SEED + 1),
    )
    sharded = Indice(
        plan.collection,
        IndiceConfig(
            geocoder_quota=QUOTA,
            stage_cache=False,
            spill_dir=str(tmp_path / "equiv-spills"),
        ),
    ).run_sharded(plan)

    collection = dataclasses.replace(
        plan.collection, table=plan.merged_input_table()
    )
    engine = Indice(
        collection, IndiceConfig(geocoder_quota=QUOTA, stage_cache=False)
    )
    preprocessing = engine.preprocess()
    analytics = engine.analyze()

    assert sharded.preprocessing.table == preprocessing.table
    assert sharded.analytics.table == analytics.table
    assert sharded.analytics.rules == analytics.rules
    return {
        "rows": EQUIV_N,
        "shards": len(plan.shards),
        "rows_out": preprocessing.table.n_rows,
        "bit_identical": True,
    }


def test_a16_sharded_scale(benchmark, tmp_path):
    cpu = os.cpu_count() or 1

    sharded = _run_child("sharded", BENCH_N, str(tmp_path / "spills"))
    monolithic = _run_child("monolithic", BENCH_N, str(tmp_path / "unused"))
    largest = _run_child("largest-shard", BENCH_N, str(tmp_path / "unused"))

    # the out-of-core claim: RSS bounded by the largest shard's working
    # set, and strictly below what the monolithic pipeline needs
    assert sharded["maxrss_mb"] < 2 * largest["maxrss_mb"], (
        f"sharded peak RSS {sharded['maxrss_mb']:.0f} MB exceeds 2x the "
        f"largest shard's working set {largest['maxrss_mb']:.0f} MB"
    )
    assert sharded["maxrss_mb"] < monolithic["maxrss_mb"], (
        f"sharded peak RSS {sharded['maxrss_mb']:.0f} MB is not below "
        f"monolithic {monolithic['maxrss_mb']:.0f} MB"
    )

    # the incremental claim: one invalidated shard recomputes, the rest
    # (including the post-merge stages) is reused
    warm_speedup = sharded["cold_s"] / sharded["warm_s"]
    assert warm_speedup >= 10, (
        f"warm single-dirty-shard re-run only {warm_speedup:.1f}x faster "
        f"({sharded['warm_s']:.1f}s vs cold {sharded['cold_s']:.1f}s)"
    )
    assert sharded["shard_misses"] == sharded["shards"] + 1
    assert sharded["shard_hits"] == sharded["shards"] - 1

    # cheap cross-check at scale (full bit-identity is proven at 25k):
    # both paths keep exactly the same number of rows
    assert sharded["rows_out"] == monolithic["rows_out"]
    assert sharded["warm_rows_out"] == sharded["rows_out"]

    equivalence = _equivalence_gate(tmp_path)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    certs_per_s = BENCH_N / sharded["cold_s"]
    payload = {
        "experiment": "A16_sharded",
        "certificates": BENCH_N,
        "cpu_count": cpu,
        "shards": sharded["shards"],
        "scheme": "by-district",
        "cold_seconds": round(sharded["cold_s"], 2),
        "certs_per_second": round(certs_per_s, 1),
        "warm_single_dirty_shard_seconds": round(sharded["warm_s"], 2),
        "warm_speedup": round(warm_speedup, 1),
        "shard_hits_warm": sharded["shard_hits"],
        "shard_misses_total": sharded["shard_misses"],
        "spill_bytes": sharded["spill_bytes"],
        "rows_out": sharded["rows_out"],
        "maxrss_mb": {
            "sharded": round(sharded["maxrss_mb"], 1),
            "monolithic": round(monolithic["maxrss_mb"], 1),
            "largest_shard_alone": round(largest["maxrss_mb"], 1),
        },
        "rss_vs_monolithic": round(
            sharded["maxrss_mb"] / monolithic["maxrss_mb"], 3
        ),
        "rss_vs_largest_shard": round(
            sharded["maxrss_mb"] / largest["maxrss_mb"], 3
        ),
        "largest_shard": {
            "key": largest["shard_key"],
            "rows": largest["shard_rows"],
        },
        "monolithic_seconds": round(
            monolithic["generate_s"] + monolithic["pipeline_s"], 2
        ),
        "equivalence_gate_25k": equivalence,
    }
    out = Path(__file__).parent / "results" / "BENCH_sharded.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A16_sharded",
        [
            f"A16 — sharded pipeline tier ({BENCH_N} certificates, "
            f"{sharded['shards']} by-district shards, cpu_count={cpu})",
            "",
            f"cold sharded run      {sharded['cold_s']:8.1f} s   "
            f"({certs_per_s:.0f} certs/s)",
            f"monolithic run        "
            f"{monolithic['generate_s'] + monolithic['pipeline_s']:8.1f} s",
            f"warm re-run, 1 dirty  {sharded['warm_s']:8.1f} s   "
            f"({warm_speedup:.1f}x faster than cold)",
            "",
            f"peak RSS: sharded {sharded['maxrss_mb']:.0f} MB  vs  "
            f"monolithic {monolithic['maxrss_mb']:.0f} MB  vs  largest "
            f"shard alone {largest['maxrss_mb']:.0f} MB",
            f"  -> sharded/monolithic = "
            f"{sharded['maxrss_mb'] / monolithic['maxrss_mb']:.2f}, "
            f"sharded/largest-shard = "
            f"{sharded['maxrss_mb'] / largest['maxrss_mb']:.2f} (< 2 gate)",
            "",
            f"25k equivalence gate: sharded output Table.__eq__-identical "
            f"to the monolithic serial pipeline "
            f"({equivalence['rows_out']} rows kept).",
        ],
    )
