"""E9 — the outlier-detection battery (paper, Section 2.1.2).

The paper integrates three univariate detectors (boxplot, gESD, MAD) plus
DBSCAN for multivariate outliers with automatically estimated parameters.
The synthetic noise log plants ground-truth outliers (x10 / x100 / /10
unit errors), so this experiment measures what the paper configures:

* per-method precision and recall on the planted outliers;
* agreement between the methods;
* the auto-estimated (minPoints, Epsilon) and DBSCAN's noise share.
"""

import numpy as np
from conftest import write_report

from repro.analytics.kmeans import standardize
from repro.dataset.schema import PAPER_CLUSTERING_FEATURES
from repro.preprocessing import (
    boxplot_outliers,
    dbscan,
    estimate_dbscan_params,
    gesd_outliers,
    mad_outliers,
)

ATTRIBUTE = "u_value_windows"


def test_e9_univariate_battery(noisy, benchmark):
    values = noisy.table[ATTRIBUTE]
    planted = {
        ev.row for ev in noisy.events
        if ev.kind == "outlier" and ev.attribute == ATTRIBUTE
    }
    assert planted, "the noise model must plant outliers for this experiment"

    results = {
        "boxplot": boxplot_outliers(values),
        "gESD": gesd_outliers(values, max_outliers=150),
        "MAD": mad_outliers(values),
    }
    benchmark(mad_outliers, values)

    lines = [
        f"E9 — univariate outlier battery on {ATTRIBUTE} "
        f"({len(planted)} planted unit-error outliers)",
        "",
        "method    flagged   precision   recall",
    ]
    metrics = {}
    for name, result in results.items():
        flagged = set(int(i) for i in result.outlier_indices())
        tp = len(flagged & planted)
        precision = tp / len(flagged) if flagged else 0.0
        recall = tp / len(planted)
        metrics[name] = (precision, recall)
        lines.append(
            f"{name:<9} {len(flagged):<9} {precision:<11.2f} {recall:.2f}"
        )

    # gross unit errors must be caught by every method
    assert all(recall > 0.5 for __, recall in metrics.values())
    # MAD (the paper's non-parametric default) must catch most of them
    assert metrics["MAD"][1] > 0.7

    # pairwise agreement on flagged rows
    lines += ["", "pairwise overlap of flagged sets (Jaccard):"]
    names = list(results)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            a = set(int(v) for v in results[names[i]].outlier_indices())
            b = set(int(v) for v in results[names[j]].outlier_indices())
            union = a | b
            jac = len(a & b) / len(union) if union else 1.0
            lines.append(f"  {names[i]} vs {names[j]}: {jac:.2f}")

    write_report("E9_univariate", lines)


def test_e9_dbscan_auto_params(collection, benchmark):
    table = collection.table
    matrix, __ = standardize(table.to_matrix(list(PAPER_CLUSTERING_FEATURES)))

    estimate = benchmark.pedantic(
        estimate_dbscan_params, args=(matrix,), rounds=2, iterations=1
    )
    result = dbscan(matrix, estimate.eps, estimate.min_points)

    noise_share = result.n_noise / len(matrix)
    assert estimate.eps > 0
    assert estimate.min_points >= 2
    assert result.n_clusters >= 1
    assert noise_share < 0.15  # the bulk of the stock is dense

    write_report(
        "E9_dbscan",
        [
            "E9 — DBSCAN multivariate outliers with auto parameters",
            f"estimated minPoints: {estimate.min_points} "
            f"(k-distance curve stabilized at k = {estimate.stabilized_at})",
            f"estimated Epsilon:   {estimate.eps:.3f}",
            f"clusters found:      {result.n_clusters}",
            f"noise points:        {result.n_noise} "
            f"({noise_share:.1%} of the stock)",
        ],
    )
