"""E2 — geospatial cleaning of the Turin subset (paper, Sections 2.1.1 + 3).

The paper describes the cleaning algorithm qualitatively (compare against
the referenced street map, accept at Levenshtein similarity >= phi, fall
back to the metered geocoding service) without publishing accuracy — the
synthetic ground truth lets us measure what the paper could only assert:

* resolution rate (how many addresses associate to a gazetteer street);
* street accuracy (does the resolved street equal the true one);
* repair rates for ZIP codes and coordinates, against the noise log;
* geocoder load (the fallback must carry only the residual).

The benchmark times ``clean_table`` on a 1500-row slice.
"""

import numpy as np
from conftest import write_report

from repro.geo.distance import equirectangular_km
from repro.preprocessing import (
    AddressCleaner,
    CleaningConfig,
    MatchStatus,
    SimulatedGeocoder,
)

RESOLVED = (MatchStatus.EXACT, MatchStatus.MATCHED, MatchStatus.GEOCODED)


def test_e2_cleaning_quality(collection, noisy, turin_dirty, benchmark):
    turin, turin_rows = turin_dirty
    cleaner = AddressCleaner(
        collection.street_map,
        CleaningConfig(phi=0.80),
        SimulatedGeocoder(collection.street_map, quota=2500, error_rate=0.02, seed=1),
    )

    slice_table = turin.head(1500)
    benchmark.pedantic(cleaner.clean_table, args=(slice_table,), rounds=3, iterations=1)

    # fresh geocoder for the full-quality pass (quota not shared with timing)
    cleaner = AddressCleaner(
        collection.street_map,
        CleaningConfig(phi=0.80),
        SimulatedGeocoder(collection.street_map, quota=2500, error_rate=0.02, seed=1),
    )
    report = cleaner.clean_table(turin)

    counts = {s: 0 for s in MatchStatus}
    for audit in report.audits:
        counts[audit.status] += 1

    # street accuracy against the gazetteer ground truth
    correct_street = 0
    resolved = 0
    coord_err_km = []
    for audit in report.audits:
        truth = collection.street_map.records[
            collection.gazetteer_index[turin_rows[audit.row]]
        ]
        if audit.status in RESOLVED:
            resolved += 1
            if report.table["address"][audit.row] == truth.street:
                correct_street += 1
            lat = float(report.table["latitude"][audit.row])
            lon = float(report.table["longitude"][audit.row])
            if not (np.isnan(lat) or np.isnan(lon)):
                coord_err_km.append(
                    equirectangular_km(lat, lon, truth.latitude, truth.longitude)
                )

    resolution = resolved / len(report.audits)
    street_acc = correct_street / resolved
    median_err = float(np.median(coord_err_km))
    frac_within_250m = float(np.mean(np.asarray(coord_err_km) < 0.25))

    # zip repair: of the rows the noise log corrupted, how many end correct
    zip_events = [
        ev for ev in noisy.events
        if ev.attribute == "zip_code" and int(ev.row) in set(turin_rows)
    ]
    row_to_local = {int(g): i for i, g in enumerate(turin_rows)}
    zip_fixed = sum(
        1 for ev in zip_events
        if report.table["zip_code"][row_to_local[ev.row]]
        == collection.table["zip_code"][ev.row]
    )

    # shape assertions: the paper's pipeline only works if these hold
    assert resolution > 0.95
    assert street_acc > 0.95
    assert counts[MatchStatus.GEOCODED] < counts[MatchStatus.EXACT]
    assert median_err < 0.1  # resolved units sit on their true civic

    write_report(
        "E2_cleaning",
        [
            "E2 — geospatial cleaning of the Turin subset (phi = 0.80)",
            f"rows cleaned                 {len(report.audits)}",
            f"exact street matches         {counts[MatchStatus.EXACT]}",
            f"Levenshtein matches >= phi   {counts[MatchStatus.MATCHED]}",
            f"geocoder fallback resolved   {counts[MatchStatus.GEOCODED]}",
            f"unresolved                   {counts[MatchStatus.UNRESOLVED]}",
            f"resolution rate              {resolution:.3f}",
            f"street accuracy (resolved)   {street_acc:.3f}",
            f"median coordinate error      {median_err * 1000:.0f} m",
            f"coords within 250 m          {frac_within_250m:.3f}",
            f"ZIP corruptions repaired     {zip_fixed}/{len(zip_events)}",
            f"geocoder requests            {report.geocoder_requests}"
            f" (quota exhausted: {report.geocoder_quota_exhausted})",
            "",
            "Paper reference: qualitative only — the fallback is used 'only",
            "when the association cannot be resolved through the referenced",
            "street map due to a limit on the number of free requests'.",
        ],
    )
