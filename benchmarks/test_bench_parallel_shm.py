"""A13 — columnar shared-memory parallel core (A9 rerun).

A9 showed the pickled-chunk parallel path peaking at 2 workers: the
per-chunk IPC payload grew with the row count, so extra workers mostly
serialized.  The shared-memory tier ships workers ``(shm_name,
col_specs, row_range)`` descriptors instead, making the per-chunk
payload a few hundred bytes.  This experiment re-sweeps the same
8000-certificate pipeline over worker counts with a per-stage breakdown
(serialize vs compute) and publishes ``BENCH_parallel_shm.json``
alongside the original ``BENCH_parallel.json`` for the trajectory.

Scaling gates only run on hosts with ``cpu_count() >= 4`` — a
single-core container cannot exhibit multi-worker speedup, so there the
experiment still verifies the hardware-independent wins: bit-identical
outputs across worker counts and descriptor payloads orders of
magnitude below the pickled chunks they replaced.
"""

import json
import os
import pickle
import time
from pathlib import Path

from conftest import requires_cpus, write_report

from repro import Indice, IndiceConfig
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)

BENCH_N = 8000
JOB_COUNTS = (1, 2, 4)


def _make_collection():
    collection = generate_epc_collection(
        SyntheticConfig(n_certificates=BENCH_N, seed=5)
    )
    noisy = apply_noise(collection, NoiseConfig(seed=5))
    collection.table = noisy.table
    return collection


def _config(**overrides) -> IndiceConfig:
    base = dict(
        kmeans_n_init=2, k_range=(2, 6), run_multivariate_outliers=False
    )
    base.update(overrides)
    return IndiceConfig(**base)


def _time_pipeline(collection, config):
    """``(elapsed_seconds, preprocessing_outcome, executor)`` cold run."""
    engine = Indice(collection, config)
    start = time.perf_counter()
    preprocessed = engine.preprocess()
    engine.analyze()
    return time.perf_counter() - start, preprocessed, engine.executor


def _pickled_chunk_bytes(collection) -> int:
    """What the old ``map`` path would pickle: the distinct addresses."""
    distinct = list(
        dict.fromkeys(
            a for a in collection.table["address"] if a is not None
        )
    )
    return len(pickle.dumps(distinct))


def test_a13_parallel_shm(benchmark):
    collection = _make_collection()
    cpu = os.cpu_count() or 1

    cold: dict[int, float] = {}
    serialize: dict[int, float] = {}
    shm_bytes: dict[int, int] = {}
    descriptor_bytes: dict[int, int] = {}
    reference = None
    for jobs in JOB_COUNTS:
        elapsed, preprocessed, executor = _time_pipeline(
            collection, _config(stage_cache=False, n_jobs=jobs)
        )
        cold[jobs] = elapsed
        serialize[jobs] = executor.encode_seconds
        shm_bytes[jobs] = executor.shm_bytes
        descriptor_bytes[jobs] = executor.descriptor_bytes
        assert executor.fallbacks == 0
        addresses = list(preprocessed.table["address"])
        if reference is None:
            reference = addresses
        else:  # shm parallel output must be bit-identical to serial
            assert addresses == reference

    # hardware-independent evidence: the IPC payload is descriptors, not
    # pickled rows — compare against what map() used to serialize
    pickled_bytes = _pickled_chunk_bytes(collection)
    for jobs in JOB_COUNTS[1:]:
        assert descriptor_bytes[jobs] > 0, "parallel path never dispatched"
        assert descriptor_bytes[jobs] * 10 < pickled_bytes, (
            f"descriptors ({descriptor_bytes[jobs]} B) are not materially "
            f"smaller than the pickled chunks ({pickled_bytes} B)"
        )

    throughput = {j: BENCH_N / cold[j] for j in JOB_COUNTS}
    scaling_gates = requires_cpus(4)
    if scaling_gates:
        assert throughput[4] > throughput[2], (
            f"4-job throughput {throughput[4]:.0f} certs/s does not beat "
            f"2-job {throughput[2]:.0f} certs/s"
        )
        assert throughput[4] >= 2.5 * throughput[1], (
            f"4-job speedup only {throughput[4] / throughput[1]:.2f}x serial"
        )

    benchmark.pedantic(
        lambda: _time_pipeline(
            collection, _config(stage_cache=False, n_jobs=2)
        ),
        rounds=1,
        iterations=1,
    )

    payload = {
        "experiment": "A13_parallel_shm",
        "certificates": BENCH_N,
        "cpu_count": cpu,
        "scaling_gates_evaluated": scaling_gates,
        "cold_seconds_by_jobs": {
            str(j): round(cold[j], 4) for j in JOB_COUNTS
        },
        "certs_per_second_by_jobs": {
            str(j): round(throughput[j], 1) for j in JOB_COUNTS
        },
        "serialize_seconds_by_jobs": {
            str(j): round(serialize[j], 4) for j in JOB_COUNTS
        },
        "compute_seconds_by_jobs": {
            str(j): round(cold[j] - serialize[j], 4) for j in JOB_COUNTS
        },
        "shm_bytes_by_jobs": {str(j): shm_bytes[j] for j in JOB_COUNTS},
        "descriptor_bytes_by_jobs": {
            str(j): descriptor_bytes[j] for j in JOB_COUNTS
        },
        "pickled_chunk_bytes": pickled_bytes,
    }
    out = Path(__file__).parent / "results" / "BENCH_parallel_shm.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A13_parallel_shm",
        [
            "A13 — columnar shared-memory parallel core "
            f"({BENCH_N} certificates, cpu_count={cpu})",
            "",
            "cold pipeline (stage cache off), serialize = shm encode time",
            "n_jobs   seconds   certs/second   serialize_s   ipc_descriptor_B",
            *[
                f"{j:<8} {cold[j]:<9.2f} {BENCH_N / cold[j]:<14.0f} "
                f"{serialize[j]:<13.4f} {descriptor_bytes[j]}"
                for j in JOB_COUNTS
            ],
            "",
            f"old pickled-chunk payload would be {pickled_bytes} bytes; the",
            f"descriptor payload replaces it at "
            f"{pickled_bytes / max(descriptor_bytes[2], 1):.0f}x smaller.",
            "outputs verified bit-identical across worker counts.",
            ""
            if scaling_gates
            else "note: cpu_count < 4, scaling gates not evaluated on this "
            "host (single-core containers cannot show multi-worker wins).",
        ],
    )
