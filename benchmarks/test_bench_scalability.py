"""A4 — end-to-end pipeline scalability (ablation).

INDICE is "tailored to effectively deal with large collection of EPCs";
the paper does not report runtimes.  This ablation measures the full
pipeline (preprocess -> select -> analyze) across collection sizes and
checks it scales gracefully (sub-quadratic): doubling the input must not
quadruple the runtime.
"""

import time

from conftest import write_report

from repro import Indice, IndiceConfig
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)

SIZES = (1000, 2000, 4000, 8000)


def _run_pipeline(n: int) -> float:
    collection = generate_epc_collection(SyntheticConfig(n_certificates=n, seed=5))
    noisy = apply_noise(collection, NoiseConfig(seed=5))
    collection.table = noisy.table
    engine = Indice(
        collection,
        IndiceConfig(kmeans_n_init=2, k_range=(2, 6), run_multivariate_outliers=False),
    )
    start = time.perf_counter()
    engine.preprocess()
    engine.analyze()
    return time.perf_counter() - start


def test_a4_pipeline_scalability(benchmark):
    timings = {n: _run_pipeline(n) for n in SIZES}
    benchmark.pedantic(_run_pipeline, args=(2000,), rounds=1, iterations=1)

    # sub-quadratic growth: an 8x input may not cost more than ~24x time
    ratio = timings[SIZES[-1]] / max(timings[SIZES[0]], 1e-9)
    assert ratio < 3.0 * (SIZES[-1] / SIZES[0])

    throughput = {n: n / t for n, t in timings.items()}
    write_report(
        "A4_scalability",
        [
            "A4 — end-to-end pipeline runtime vs collection size (ablation)",
            "certificates   seconds   certs/second",
            *[
                f"{n:<14} {timings[n]:<9.2f} {throughput[n]:.0f}"
                for n in SIZES
            ],
            "",
            f"8x input costs {ratio:.1f}x time (sub-quadratic: required < 24x)",
        ],
    )
