"""A11 — the invariant linter sweeps the whole source tree in seconds.

``repro.checks`` is wired into tier-1 (every ``pytest`` run re-proves the
determinism / cache / fault contracts over ``src/repro``), so its cost is
paid constantly.  This experiment measures a full cold sweep — collect,
parse, all rules including the cross-file contract rules — best-of-N, and
asserts it stays under a hard 5 s ceiling so the gate can never quietly
become the slowest part of the suite.
"""

import json
import time
from pathlib import Path

from conftest import write_report

import repro
from repro.checks import Checker, all_rules

ROUNDS = 3
MAX_SWEEP_S = 5.0
SRC = Path(repro.__file__).parent


def _sweep():
    """``(elapsed_seconds, result)`` for one cold full-tree analysis."""
    checker = Checker()
    start = time.perf_counter()
    result = checker.run([SRC])
    return time.perf_counter() - start, result


def test_a11_full_sweep_under_budget(benchmark):
    times = []
    result = None
    for __ in range(ROUNDS):
        elapsed, result = _sweep()
        times.append(elapsed)
    best = min(times)

    # the timed runs must be real, clean, full sweeps
    assert result.ok, [f.render() for f in result.findings]
    assert result.n_files > 60

    assert best <= MAX_SWEEP_S, (
        f"full static-analysis sweep took {best:.2f}s over {result.n_files} "
        f"files — budget is {MAX_SWEEP_S:.0f}s"
    )

    benchmark.pedantic(lambda: _sweep(), rounds=1, iterations=1)

    per_file_ms = best / result.n_files * 1000.0
    payload = {
        "experiment": "A11_checks",
        "files": result.n_files,
        "rules": len(all_rules()),
        "rounds": ROUNDS,
        "best_sweep_seconds": round(best, 4),
        "per_file_ms": round(per_file_ms, 3),
        "budget_seconds": MAX_SWEEP_S,
        "findings": len(result.findings),
        "suppressed": result.n_suppressed,
    }
    out = Path(__file__).parent / "results" / "BENCH_checks.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A11_checks",
        [
            f"A11 — invariant-linter sweep ({result.n_files} files, "
            f"{len(all_rules())} rules, best of {ROUNDS})",
            "",
            f"best sweep     {best:.3f} s  (budget {MAX_SWEEP_S:.0f} s)",
            f"per file       {per_file_ms:.2f} ms",
            f"findings       {len(result.findings)} "
            f"({result.n_suppressed} pragma-suppressed)",
            "",
            "the sweep includes the cross-file contract rules (CACHE001",
            "fingerprint coverage, FAULT001 site parity) and the runtime",
            "cross-check import of the installed IndiceConfig.",
        ],
    )
