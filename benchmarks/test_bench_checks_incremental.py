"""A12 — the incremental analysis cache makes warm sweeps sub-second.

A11 prices the cold sweep; this experiment prices the steady state.  With
the content-hash cache populated, a repeat sweep over an unchanged tree
should skip every parse and every per-file rule pass, leaving only the
cache probe plus the project-level rules (lineage, import cycles, config
parity) — which run from cached facts, never from re-parsed ASTs.  The
warm budget is a hard 1 s so `repro check --cache` stays cheap enough to
run on every save, and a single-file edit must invalidate exactly one
entry.
"""

import json
import time
from pathlib import Path

from conftest import write_report

import repro
from repro.checks import AnalysisCache, Checker, all_rules, analysis_fingerprint

ROUNDS = 3
MAX_COLD_S = 5.0
MAX_WARM_S = 1.0
SRC = Path(repro.__file__).parent


def _sweep(cache_path):
    """``(elapsed_seconds, result)`` for one cached full-tree analysis."""
    rules = all_rules()
    checker = Checker(
        rules=rules,
        cache=AnalysisCache(cache_path, analysis_fingerprint(rules)),
    )
    start = time.perf_counter()
    result = checker.run([SRC])
    return time.perf_counter() - start, result


def test_a12_warm_sweep_under_one_second(benchmark, tmp_path):
    cache_path = tmp_path / "checks-cache.json"

    cold_s, cold = _sweep(cache_path)
    assert cold.ok, [f.render() for f in cold.findings]
    assert cold.n_from_cache == 0
    assert cold_s <= MAX_COLD_S, f"cold sweep took {cold_s:.2f}s"

    warm_times = []
    warm = None
    for __ in range(ROUNDS):
        elapsed, warm = _sweep(cache_path)
        warm_times.append(elapsed)
    best_warm = min(warm_times)

    # the warm runs must be real full-reuse sweeps with identical verdicts
    assert warm.n_from_cache == warm.n_files == cold.n_files
    assert warm.findings == cold.findings
    assert warm.n_suppressed == cold.n_suppressed

    assert best_warm <= MAX_WARM_S, (
        f"warm sweep took {best_warm:.2f}s over {warm.n_files} files with a "
        f"full cache — budget is {MAX_WARM_S:.1f}s"
    )

    benchmark.pedantic(lambda: _sweep(cache_path), rounds=1, iterations=1)

    speedup = cold_s / best_warm if best_warm > 0 else float("inf")
    payload = {
        "experiment": "A12_checks_incremental",
        "files": cold.n_files,
        "rules": len(all_rules()),
        "rounds": ROUNDS,
        "cold_sweep_seconds": round(cold_s, 4),
        "best_warm_seconds": round(best_warm, 4),
        "speedup": round(speedup, 1),
        "cold_budget_seconds": MAX_COLD_S,
        "warm_budget_seconds": MAX_WARM_S,
        "cached_files_warm": warm.n_from_cache,
        "findings": len(warm.findings),
    }
    out = Path(__file__).parent / "results" / "BENCH_checks_incremental.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    write_report(
        "A12_checks_incremental",
        [
            f"A12 — incremental analysis cache ({cold.n_files} files, "
            f"{len(all_rules())} rules, best warm of {ROUNDS})",
            "",
            f"cold sweep     {cold_s:.3f} s  (budget {MAX_COLD_S:.0f} s)",
            f"warm sweep     {best_warm:.3f} s  (budget {MAX_WARM_S:.1f} s)",
            f"speedup        {speedup:.1f}x  "
            f"({warm.n_from_cache}/{warm.n_files} files from cache)",
            "",
            "warm runs reuse content-hash-keyed facts and findings; the",
            "project-level rules (COL*, PAR*, CFG001, IMP001, CACHE001,",
            "FAULT001) re-run every sweep but read cached facts, so no",
            "file is re-parsed unless its bytes changed.",
        ],
    )
