"""A5–A7 — benchmarks for the future-work extensions.

The paper's conclusions announce "other analytics techniques (both
supervised and unsupervised)" and an automatic configuration advisor.
These experiments evaluate the implemented extensions against the
synthetic generator's ground truth:

* **A5** — agglomerative (Ward) vs K-means: construction-era recovery
  purity and silhouette at the same K;
* **A6** — marker-clustering cell-size ablation: the zoom-level design
  choice behind the cluster-marker map (DESIGN.md §5.4);
* **A7** — supervised screening: predict the energy class from the five
  thermo-physical features (k-NN), and EP_H by a CART regressor.
"""

from collections import Counter

import numpy as np
from conftest import write_report

from repro.analytics.cart import RegressionTree
from repro.analytics.hierarchical import agglomerative
from repro.analytics.kmeans import kmeans, standardize
from repro.analytics.supervised import (
    KnnClassifier,
    accuracy,
    r2_score,
    train_test_split,
)
from repro.analytics.validation import silhouette_score
from repro.dashboard.markercluster import cluster_markers
from repro.dataset.schema import PAPER_CLUSTERING_FEATURES
from repro.geo.regions import Granularity

FEATURES = list(PAPER_CLUSTERING_FEATURES)


def _era_purity(labels: np.ndarray, eras: np.ndarray) -> float:
    """Weighted majority-era share over clusters (ignores label -1)."""
    total = 0
    matched = 0
    for cluster in np.unique(labels[labels >= 0]):
        members = eras[labels == cluster]
        counts = Counter(members)
        matched += counts.most_common(1)[0][1]
        total += len(members)
    return matched / total if total else float("nan")


def test_a5_hierarchical_vs_kmeans(collection, benchmark):
    # subsample for the O(n^2) dendrogram
    rng = np.random.default_rng(0)
    rows = rng.choice(collection.n_certificates, size=2500, replace=False)
    matrix, __ = standardize(collection.table.to_matrix(FEATURES)[rows])
    eras = np.array(collection.era_labels)[rows]

    hierarchical = benchmark.pedantic(
        agglomerative, args=(matrix,), kwargs={"linkage": "ward"},
        rounds=1, iterations=1,
    )
    suggested = hierarchical.suggest_k()
    # era recovery is evaluated at the true regime count (5 eras); the
    # dendrogram's own suggestion is reported alongside
    k = 5
    ward_labels = hierarchical.cut(k)
    km_labels = kmeans(matrix, k, n_init=3, seed=0).labels

    ward_purity = _era_purity(ward_labels, eras)
    km_purity = _era_purity(km_labels, eras)
    ward_sil = silhouette_score(matrix, ward_labels, max_points=1500)
    km_sil = silhouette_score(matrix, km_labels, max_points=1500)

    # both clusterers must beat the trivial baseline (largest era share)
    baseline = Counter(eras).most_common(1)[0][1] / len(eras)
    assert ward_purity > baseline
    assert km_purity > baseline

    write_report(
        "A5_hierarchical",
        [
            "A5 — agglomerative (Ward) vs K-means on era recovery (2500 rows, K = 5)",
            f"dendrogram-suggested K: {suggested}",
            f"trivial baseline (largest era share): {baseline:.3f}",
            "",
            "method         era purity   silhouette",
            f"ward cut       {ward_purity:<12.3f} {ward_sil:.3f}",
            f"k-means        {km_purity:<12.3f} {km_sil:.3f}",
            "",
            "shape: both unsupervised methods recover era structure above the",
            "baseline; purity is bounded by design — independent renovations",
            "genuinely move buildings between regimes (see DESIGN.md), so a",
            "perfect era recovery is neither possible nor desirable.",
        ],
    )


def test_a6_marker_cell_size(collection, benchmark):
    table = collection.table
    lat, lon, eph = table["latitude"], table["longitude"], table["eph"]

    cell_sizes = (0.3, 0.6, 1.2, 2.4, 4.8)
    rows = []
    counts = []
    for cell in cell_sizes:
        markers = cluster_markers(lat, lon, eph, Granularity.CITY, cell_km=cell)
        total = sum(m.count for m in markers)
        biggest = max(m.count for m in markers)
        counts.append(len(markers))
        rows.append(f"{cell:<9} {len(markers):<9} {biggest:<12} {total}")

    benchmark.pedantic(
        cluster_markers, args=(lat, lon, eph, Granularity.CITY),
        kwargs={"cell_km": 1.2}, rounds=3, iterations=1,
    )

    # the design-choice invariant: coarser cells aggregate into fewer,
    # bigger markers while conserving the aggregated total
    assert counts == sorted(counts, reverse=True)

    write_report(
        "A6_marker_cells",
        [
            "A6 — marker-clustering cell size ablation (city view)",
            "cell_km   markers   max_marker   total_aggregated",
            *rows,
            "",
            "shape: monotone — the cell-size <-> zoom mapping in",
            "markercluster.CELL_KM_BY_GRANULARITY implements the paper's",
            "drill-down with conserved cardinality.",
        ],
    )


def test_a7_supervised_screening(collection, benchmark):
    table = collection.table
    matrix, __ = standardize(table.to_matrix(FEATURES))
    classes = list(table["energy_class"])
    train, test = train_test_split(table.n_rows, 0.25, seed=0)

    classifier = KnnClassifier(k=25).fit(matrix[train], [classes[i] for i in train])
    predictions = benchmark.pedantic(
        classifier.predict, args=(matrix[test][:500],), rounds=1, iterations=1
    )
    predictions = classifier.predict(matrix[test])
    truth = [classes[i] for i in test]
    acc = accuracy(truth, predictions)

    # within-one-class accuracy (adjacent energy classes are near-ties)
    order = {c: i for i, c in enumerate(("A4", "A3", "A2", "A1", "B", "C", "D", "E", "F", "G"))}
    near = np.mean(
        [
            abs(order[t] - order[p]) <= 1
            for t, p in zip(truth, predictions)
            if t is not None and p is not None
        ]
    )

    tree = RegressionTree(max_depth=8, min_samples_leaf=30).fit(
        matrix[train], table["eph"][train]
    )
    r2 = r2_score(table["eph"][test], tree.predict(matrix[test]))

    # the features must carry real signal about the certificate outcome
    assert acc > 0.3       # 10-class problem, chance ~0.1
    assert near > 0.6
    assert r2 > 0.5

    write_report(
        "A7_supervised",
        [
            "A7 — supervised screening from the five thermo-physical features",
            f"energy-class k-NN accuracy (10 classes): {acc:.3f}",
            f"within-one-class accuracy:               {near:.3f}",
            f"EP_H CART regression R^2 (held out):     {r2:.3f}",
            "",
            "shape: the same features that cluster the stock also predict",
            "certificate outcomes — the screening use-case energy scientists",
            "run INDICE for (paper, Section 2.2.1).",
        ],
    )
