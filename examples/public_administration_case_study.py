"""The paper's Section 3 case study, step by step.

Stakeholder: the public administration (PA), looking for "areas where to
promote and invest for energy renovations".  The script mirrors the
paper's narrative:

1. select EPCs of housing units of type E.1.1 in the city of Turin;
2. clean the geospatial attributes against the referenced street map
   (Levenshtein matching with threshold phi, geocoder fallback);
3. check that the five thermo-physical features (S/V, U_o, U_w, S_r,
   ETAH) are weakly correlated (Figure 3);
4. cluster with K-means (elbow-selected K) and inspect the per-cluster
   EP_H distributions (Figure 4);
5. discretize U_w / U_o / ETAH with CARTs on EP_H (footnote 4) and mine
   association rules explaining high heating demand;
6. emit dashboards at district and city zoom (Figure 2, bottom).

Run:  python examples/public_administration_case_study.py
"""

from pathlib import Path

import numpy as np

from repro import Granularity, Indice, IndiceConfig, Stakeholder
from repro.analytics.rules import RuleMiner
from repro.core.report import generate_report
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.preprocessing.address_cleaner import MatchStatus

OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    print("=" * 70)
    print("INDICE case study: public administration, Turin, type E.1.1")
    print("=" * 70)

    collection = generate_epc_collection(SyntheticConfig(n_certificates=8000))
    noisy = apply_noise(collection, NoiseConfig())
    collection.table = noisy.table
    engine = Indice(collection, IndiceConfig(kmeans_n_init=3))

    # -- tier 1: pre-processing ----------------------------------------
    pre = engine.preprocess()
    report = pre.cleaning_report
    counts = {status.value: n for status, n in report.counts_by_status().items()}
    print("\n[1] Geospatial cleaning against the referenced street map")
    print(f"    rows cleaned:        {len(report.audits)}")
    print(f"    match outcome:       {counts}")
    print(f"    resolution rate:     {report.resolution_rate():.1%}")
    print(f"    geocoder requests:   {report.geocoder_requests}"
          f" (quota exhausted: {report.geocoder_quota_exhausted})")
    repaired = sum(1 for a in report.audits if a.repaired_fields)
    print(f"    rows with repairs:   {repaired}")

    print("\n[2] Outlier filtering (values labelled as outliers are dropped)")
    for name, result in pre.univariate_outliers.items():
        print(f"    {name:<18} {result.method.value:<8} flagged {result.n_outliers}")
    if pre.multivariate_noise is not None:
        print(f"    DBSCAN multivariate noise: {int(pre.multivariate_noise.sum())}")
    print(f"    rows: {pre.n_rows_in} -> {pre.n_rows_out}")

    # -- tier 2: selection and analytics ---------------------------------
    analysis = engine.analyze()
    print("\n[3] Correlation eligibility (Figure 3)")
    corr = analysis.correlation
    print(f"    max |rho| among features: {corr.max_abs_off_diagonal():.3f}")
    print(f"    eligible for clustering:  {corr.is_eligible()}")

    print("\n[4] K-means with elbow-selected K (Figure 4)")
    print(f"    SSE curve: "
          + ", ".join(f"K={k}: {v:.0f}" for k, v in sorted(analysis.clustering.curve.items())))
    print(f"    chosen K = {analysis.clustering.chosen_k}")
    means = analysis.table.aggregate("cluster", "eph", np.mean)
    means.pop(None, None)
    for cluster, mean in sorted(means.items(), key=lambda kv: kv[1]):
        size = analysis.clustering.result.cluster_sizes()[int(cluster)]
        print(f"    cluster {cluster}: {size:>5} certificates, mean EP_H = {mean:6.1f} kWh/m2y")

    print("\n[5] CART discretization (footnote 4) and association rules")
    for name, disc in analysis.discretizations.items():
        print(f"    {name}: {disc.describe()}")
    top = RuleMiner.top_k(analysis.rules, 8, by="lift")
    print(f"    {len(analysis.rules)} rules pass the default thresholds; top by lift:")
    for rule in top:
        print(f"      {rule}  (sup={rule.support:.2f}, conf={rule.confidence:.2f}, "
              f"lift={rule.lift:.2f})")

    # -- tier 3: dashboards at two zoom levels ----------------------------
    OUTPUT_DIR.mkdir(exist_ok=True)
    for granularity in (Granularity.DISTRICT, Granularity.CITY):
        dash = engine.build_dashboard(Stakeholder.PUBLIC_ADMINISTRATION, granularity)
        path = dash.save(
            OUTPUT_DIR / f"pa_dashboard_{granularity.name.lower()}.html"
        )
        print(f"\n[6] {granularity.name.lower()}-level dashboard -> {path}")

    # the actionable outcome the paper describes: target the worst areas
    worst = sorted(
        (
            (district, mean)
            for district, mean in engine._analyzed.table.aggregate(
                "district", "eph", np.mean
            ).items()
            if district is not None
        ),
        key=lambda kv: -kv[1],
    )[:3]
    print("\nRenovation policy targets (highest mean EP_H):")
    for district, mean in worst:
        print(f"    {district}: {mean:.1f} kWh/m2y")

    # the plain-language companion report for non-expert readers
    report_path = OUTPUT_DIR / "pa_report.md"
    report_path.write_text(generate_report(engine), encoding="utf-8")
    print(f"\nPlain-language report -> {report_path}")


if __name__ == "__main__":
    main()
