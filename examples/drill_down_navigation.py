"""Navigable drill-down: the paper's dynamic energy maps in one file.

Section 2.3: the three energy maps "have been used together, ensuring in a
single solution different levels of detail depending on the zoom degree
selected by the user".  This script produces that artifact — a single
standalone HTML dashboard with one tab per zoom level (city → district →
neighbourhood → housing unit) — and prints the cluster profiles the
dashboard's groups correspond to, including each cluster's automatic tag.

It also runs the hierarchical-clustering extension side by side with
K-means, showing the dendrogram's own K suggestion.

Run:  python examples/drill_down_navigation.py
"""

from pathlib import Path

import numpy as np

from repro import Indice, IndiceConfig, Stakeholder
from repro.analytics import agglomerative, profile_clusters, silhouette_score, standardize
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)

OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    collection = generate_epc_collection(SyntheticConfig(n_certificates=6000))
    noisy = apply_noise(collection, NoiseConfig())
    collection.table = noisy.table

    engine = Indice(collection, IndiceConfig(kmeans_n_init=3))
    engine.preprocess()
    analysis = engine.analyze()

    # 1. the navigable dashboard: one tab per zoom level
    OUTPUT_DIR.mkdir(exist_ok=True)
    nav = engine.build_navigable_dashboard(Stakeholder.PUBLIC_ADMINISTRATION)
    path = nav.save(OUTPUT_DIR / "navigable_dashboard.html")
    print(f"Navigable dashboard ({', '.join(nav.tab_labels())}) -> {path}\n")

    # 2. human-readable cluster profiles (what the markers mean)
    profiles = profile_clusters(
        analysis.table,
        "cluster",
        list(engine.config.features),
        engine.config.response,
        categorical_attributes=["construction_period", "glazing_type"],
    )
    print("Cluster profiles (best performing first):")
    for p in profiles:
        period, share = p.dominant_categories.get("construction_period", ("?", 0.0))
        print(f"  cluster {p.cluster}: {p.size} units ({p.share:.0%}), "
              f"mean EP_H {p.response_mean:.0f} kWh/m2y")
        print(f"      tag: {p.tag}")
        print(f"      dominant period: {period} ({share:.0%})")

    # 3. the unsupervised extension: hierarchical view of the same stock
    features = list(engine.config.features)
    matrix, __ = standardize(analysis.table.to_matrix(features))
    rng = np.random.default_rng(0)
    sample = rng.choice(len(matrix), size=min(2000, len(matrix)), replace=False)
    dendrogram = agglomerative(matrix[sample], linkage="ward")
    k_kmeans = analysis.clustering.chosen_k
    k_hier = dendrogram.suggest_k()
    print(f"\nK selection: SSE elbow -> {k_kmeans}; dendrogram jump -> {k_hier}")
    for k in sorted({k_kmeans, k_hier, 5}):
        labels = dendrogram.cut(k)
        score = silhouette_score(matrix[sample], labels, max_points=1200)
        print(f"  ward cut at K={k}: silhouette {score:.3f}")


if __name__ == "__main__":
    main()
