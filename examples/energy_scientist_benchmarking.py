"""Energy-scientist scenario: benchmarking groups of similar buildings.

The paper's energy scientists "explore and characterize through supervised
and unsupervised techniques groups of buildings with similar properties to
perform benchmarking analysis" (Section 2.2.1).  This script exercises the
expert-facing surface of INDICE:

1. compare the three univariate outlier detectors on a thermo-physical
   attribute, record the expert's choice in the suggestion store (the
   default future non-expert users will receive);
2. estimate DBSCAN parameters automatically from the k-distance curve and
   run the multivariate pass;
3. inspect the SSE elbow, cluster the stock, and produce per-cluster
   benchmarking statistics (the quartile panel of Section 2.3);
4. verify with the era ground truth that clusters track construction age.

Run:  python examples/energy_scientist_benchmarking.py
"""

from collections import Counter
from pathlib import Path

import numpy as np

from repro import Indice, IndiceConfig, Stakeholder
from repro.analytics import standardize, summarize_numeric
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.preprocessing import (
    ExpertConfigStore,
    OutlierMethod,
    boxplot_outliers,
    dbscan,
    estimate_dbscan_params,
    gesd_outliers,
    mad_outliers,
)

OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    collection = generate_epc_collection(SyntheticConfig(n_certificates=6000))
    noisy = apply_noise(collection, NoiseConfig())
    dirty_table = noisy.table
    collection.table = dirty_table

    planted = {
        ev.row for ev in noisy.events
        if ev.kind == "outlier" and ev.attribute == "u_value_opaque"
    }

    # 1. the detector bake-off an expert runs before trusting a filter
    print("[1] Univariate outlier detectors on u_value_opaque "
          f"({len(planted)} planted unit-error outliers)")
    values = dirty_table["u_value_opaque"]
    store = ExpertConfigStore(OUTPUT_DIR / "expert_store.json")
    for name, result in (
        ("boxplot", boxplot_outliers(values)),
        ("gESD", gesd_outliers(values, max_outliers=80)),
        ("MAD", mad_outliers(values)),
    ):
        flagged = set(result.outlier_indices())
        recall = len(flagged & planted) / max(len(planted), 1)
        print(f"    {name:<8} flagged {result.n_outliers:>4}  "
              f"planted-outlier recall {recall:5.1%}")
    # the expert settles on MAD with the 3.5 cut-off and records the choice
    store.record_choice("u_value_opaque", OutlierMethod.MAD, {"cutoff": 3.5},
                        expert="energy-scientist")
    suggestion = store.suggest("u_value_opaque")
    print(f"    stored suggestion for non-experts: {suggestion.method.value} "
          f"{suggestion.params_dict()}")

    # 2. full preprocessing + case-study selection
    engine = Indice(collection, IndiceConfig(kmeans_n_init=3))
    pre = engine.preprocess()
    turin = engine.select_case_study(pre.table)

    print("\n[2] Automatic DBSCAN parameters (k-distance stabilization)")
    features = list(engine.config.features)
    matrix, __ = standardize(turin.to_matrix(features))
    estimate = estimate_dbscan_params(matrix)
    result = dbscan(matrix, estimate.eps, estimate.min_points)
    print(f"    minPoints = {estimate.min_points} "
          f"(curve stabilized at k = {estimate.stabilized_at})")
    print(f"    Epsilon   = {estimate.eps:.3f} (elbow of the stable curve)")
    print(f"    clusters  = {result.n_clusters}, multivariate noise = {result.n_noise}")

    # 3. clustering + per-cluster benchmarking panel
    analysis = engine.analyze(turin)
    print("\n[3] SSE elbow and per-cluster benchmarking")
    print("    SSE curve: "
          + ", ".join(f"K={k}: {v:.0f}" for k, v in sorted(analysis.clustering.curve.items())))
    print(f"    chosen K = {analysis.clustering.chosen_k}\n")
    header = f"    {'cluster':<8}{'n':>6}{'mean':>9}{'std':>9}{'Q1':>9}{'median':>9}{'Q3':>9}"
    print(header)
    eph = analysis.table["eph"]
    for cluster, idx in sorted(analysis.table.group_indices("cluster").items(),
                               key=lambda kv: str(kv[0])):
        if cluster is None:
            continue
        s = summarize_numeric(eph[idx], "eph")
        print(f"    {cluster:<8}{s.count:>6}{s.mean:>9.1f}{s.std:>9.1f}"
              f"{s.q1:>9.1f}{s.median:>9.1f}{s.q3:>9.1f}")

    # 4. sanity against the generator's ground truth
    print("\n[4] Cluster vs construction era (ground truth held by the generator)")
    table = analysis.table
    by_cluster: dict[str, Counter] = {}
    for label, period in zip(table["cluster"], table["construction_period"]):
        if label is not None:
            by_cluster.setdefault(label, Counter())[period] += 1
    for cluster, counter in sorted(by_cluster.items()):
        top, count = counter.most_common(1)[0]
        share = count / sum(counter.values())
        print(f"    cluster {cluster}: dominant period {top!r} ({share:.0%})")

    OUTPUT_DIR.mkdir(exist_ok=True)
    dash = engine.build_dashboard(Stakeholder.ENERGY_SCIENTIST)
    path = dash.save(OUTPUT_DIR / "scientist_dashboard.html")
    print(f"\nDashboard written to {path}")


if __name__ == "__main__":
    main()
