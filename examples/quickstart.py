"""Quickstart: the full INDICE pipeline in a dozen lines.

Generates a synthetic Piedmont EPC collection, dirties it the way real
certifier-typed data is dirty, and runs the complete pipeline —
geospatial cleaning, outlier removal, the Turin E.1.1 case-study
selection, K-means with elbow-selected K, CART discretization,
association rules — ending in a standalone HTML dashboard.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import Indice, IndiceConfig, Stakeholder
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)

OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    # 1. A seeded stand-in for the Piedmont EPC open dataset (25k certs in
    #    the paper; 5k here to keep the quickstart fast).
    collection = generate_epc_collection(SyntheticConfig(n_certificates=5000))

    # 2. Real collections arrive dirty: typos in addresses, missing ZIPs,
    #    corrupted coordinates, unit-error outliers.
    noisy = apply_noise(collection, NoiseConfig())
    collection.table = noisy.table

    # 3. The full pipeline with paper-default configuration.
    engine = Indice(collection, IndiceConfig(kmeans_n_init=3))
    dashboard = engine.run(Stakeholder.PUBLIC_ADMINISTRATION)

    # 4. Inspect what happened and save the informative dashboard.
    print("Pipeline provenance:")
    print(engine.log.describe())

    OUTPUT_DIR.mkdir(exist_ok=True)
    path = dashboard.save(OUTPUT_DIR / "quickstart_dashboard.html")
    print(f"\nDashboard written to {path}")
    print(f"Panels: {', '.join(dashboard.panel_titles())}")


if __name__ == "__main__":
    main()
