"""Citizen scenario: find an energy-efficient flat.

The paper's citizen "may want to discover areas of the city with more
performing buildings, to buy a flat that performs well in terms of energy
efficiency" (Section 2.2.1).  This script uses the querying engine and the
citizen profile directly — no clustering needed — to:

1. rank neighbourhoods by average heating demand;
2. drill into the best neighbourhood with a per-certificate scatter map;
3. shortlist concrete flats matching the citizen's constraints
   (small-ish, recent windows, energy class C or better).

Run:  python examples/citizen_flat_search.py
"""

from pathlib import Path

import numpy as np

from repro import Granularity, Indice, IndiceConfig, Stakeholder
from repro.dashboard import DashboardBuilder, choropleth_map, scatter_map
from repro.dataset import (
    NoiseConfig,
    SyntheticConfig,
    apply_noise,
    generate_epc_collection,
)
from repro.query import (
    Between,
    Comparison,
    OneOf,
    Query,
    QueryEngine,
    WithinRegion,
    profile_for,
)

OUTPUT_DIR = Path(__file__).parent / "output"


def main() -> None:
    collection = generate_epc_collection(SyntheticConfig(n_certificates=6000))
    noisy = apply_noise(collection, NoiseConfig())
    collection.table = noisy.table

    # preprocessing only — the citizen flow is query-driven
    engine = Indice(collection, IndiceConfig())
    pre = engine.preprocess()
    turin = engine.select_case_study(pre.table)
    query_engine = QueryEngine(turin)

    profile = profile_for(Stakeholder.CITIZEN)
    print(f"Stakeholder profile: {profile.description}\n")

    # 1. efficient areas: the profile's recommended choropleth
    report = profile.report("efficient_areas")
    means = query_engine.aggregate(report.query, by="neighbourhood", attribute="eph")
    means.pop(None, None)
    ranking = sorted(means.items(), key=lambda kv: kv[1])
    print("Most efficient neighbourhoods (mean EP_H, kWh/m2y):")
    for name, mean in ranking[:5]:
        print(f"    {name:<22} {mean:6.1f}")
    best_neighbourhood = ranking[0][0]

    # 2. drill into the winner with a scatter map
    in_area = Query(
        where=WithinRegion(
            collection.hierarchy, Granularity.NEIGHBOURHOOD, best_neighbourhood
        )
    )
    area = query_engine.execute(in_area).table
    print(f"\nDrilling into {best_neighbourhood}: {area.n_rows} certificates")

    # 3. the citizen's shortlist: efficient, manageable size, good windows
    shortlist_query = (
        in_area
        .with_filter(OneOf("energy_class", ("A4", "A3", "A2", "A1", "B", "C")))
        .with_filter(Between("heated_surface", 45.0, 120.0))
        .with_filter(Comparison("u_value_windows", "<", 2.0))
        .with_sort("eph")
        .with_limit(10)
        .with_select(
            "certificate_id", "address", "house_number", "energy_class",
            "eph", "heated_surface",
        )
    )
    shortlist = query_engine.execute(shortlist_query).table
    print("\nShortlisted flats (best EP_H first):")
    for row in shortlist.to_rows():
        print(
            f"    {row['address']} {row['house_number']:<5} "
            f"class {row['energy_class']:<2}  EP_H {row['eph']:6.1f}  "
            f"{row['heated_surface']:5.0f} m2"
        )

    # 4. the citizen's dashboard: city overview + area drill-down
    OUTPUT_DIR.mkdir(exist_ok=True)
    builder = DashboardBuilder(
        "INDICE — flat search", f"best neighbourhood: {best_neighbourhood}"
    )
    builder.add_map(
        choropleth_map(
            collection.hierarchy, Granularity.NEIGHBOURHOOD, means, "eph",
            title="Average EP_H by neighbourhood",
        ),
        caption="Greener areas host more efficient homes.",
    )
    builder.add_map(
        scatter_map(
            area["latitude"], area["longitude"], area["eph"], "eph",
            hierarchy=collection.hierarchy,
            title=f"EP_H per certificate in {best_neighbourhood}",
        ),
        caption="Every dot is one certificate; hover for its demand.",
    )
    path = builder.build().save(OUTPUT_DIR / "citizen_dashboard.html")
    print(f"\nDashboard written to {path}")


if __name__ == "__main__":
    main()
