#!/usr/bin/env bash
# CI gate for the static-analysis tier.
#
# Runs the full repro.checks sweep over src/ and tests/ plus the generic
# lint tools (ruff, mypy) when they are installed — `--all` skips any
# tool that is missing rather than failing, so the script works in the
# minimal container and in a fully tooled dev checkout alike.
#
# The analysis cache lives under .repro-cache/ so repeated CI runs on an
# unchanged tree are warm (<1s); the cache key includes the analyzer
# sources, so upgrading the checker invalidates it automatically.
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:${PYTHONPATH}}"

mkdir -p .repro-cache

# the shared-memory tier's own suite: codec round trip, segment
# lifecycle (no leaks under crashes/faults), map_table semantics
python -m pytest tests/test_shm.py -q

# the serving tier's concurrency harness: coalescing, 304s, shedding,
# graceful reload — real sockets, so it carries a wall-clock budget (a
# wedged lock or leaked slot shows up as a hang, not a failure); the
# REPRO_SANITIZE_LOCKS run arms the lockdep sanitizer so every lock in
# the store/server/cache path is order-checked while the suite hammers it
timeout 180 python -m pytest tests/test_serving_concurrency.py -q
REPRO_SANITIZE_LOCKS=1 timeout 120 python -m pytest \
    tests/test_lockdep.py \
    tests/test_serving_concurrency.py::TestLockdepSanitized -q

# the concurrency contract sweep must come back empty: any lock-order
# cycle, unguarded shared write, blocking call under a lock or semaphore
# imbalance in src/ is a CI failure, not a warning
python -m repro.checks src/repro \
    --select LOCK002,LOCK003,LOCK004,SEM001 \
    --cache .repro-cache/checks-concurrency.json

# the effect/purity sweep must come back empty too: a cached stage or
# render reading un-fingerprinted state, taint reaching a serialized
# sink, a non-idempotent retry or an impure pool worker fails CI
python -m repro.checks src/repro \
    --select CACHE002,DET004,FAULT002,PURE001 \
    --cache .repro-cache/checks-effects.json

# the dynamic half of the same contract: the real pipeline runs with the
# effect auditor armed — an un-fingerprinted os.environ read inside a
# cached stage or render raises at the read site — and the observed
# effect sets are cross-checked against the static summaries
REPRO_AUDIT_EFFECTS=1 timeout 300 python -m pytest \
    tests/test_effectaudit.py -q

# sharded-tier smoke at a CI-budgeted 100k certificates: a cold
# by-district run must beat the wall-clock budget, and a warm re-run
# after invalidating one shard must reuse every other shard (the full
# 1M experiment stays in `pytest -m bench`, see benchmarks/)
timeout 300 python scripts/sharded_smoke.py --certificates 100000

exec python -m repro.checks src/repro tests/test_checks.py \
    --cache .repro-cache/checks.json \
    --all
