#!/usr/bin/env bash
# CI gate for the static-analysis tier.
#
# Runs the full repro.checks sweep over src/ and tests/ plus the generic
# lint tools (ruff, mypy) when they are installed — `--all` skips any
# tool that is missing rather than failing, so the script works in the
# minimal container and in a fully tooled dev checkout alike.
#
# The analysis cache lives under .repro-cache/ so repeated CI runs on an
# unchanged tree are warm (<1s); the cache key includes the analyzer
# sources, so upgrading the checker invalidates it automatically.
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:${PYTHONPATH}}"

mkdir -p .repro-cache

# the shared-memory tier's own suite: codec round trip, segment
# lifecycle (no leaks under crashes/faults), map_table semantics
python -m pytest tests/test_shm.py -q

# the serving tier's concurrency harness: coalescing, 304s, shedding,
# graceful reload — real sockets, so it carries a wall-clock budget (a
# wedged lock or leaked slot shows up as a hang, not a failure)
timeout 180 python -m pytest tests/test_serving_concurrency.py -q

exec python -m repro.checks src/repro tests/test_checks.py \
    --cache .repro-cache/checks.json \
    --all
