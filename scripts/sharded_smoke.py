#!/usr/bin/env python
"""CI smoke for the sharded pipeline tier (budgeted, no benchmark gates).

Runs one cold by-district sharded pass at a CI-sized certificate count,
invalidates a single shard's spill, and re-runs warm — asserting the
incremental contract (one recompute, every sibling reused, byte-equal
output) rather than any hardware-dependent throughput number.  The full
1M-certificate experiment with RSS and speedup gates is A16
(``pytest -m bench`` in benchmarks/).
"""

import argparse
import pathlib
import sys
import tempfile
import time

from repro import Indice, IndiceConfig
from repro.dataset import NoiseConfig, SyntheticConfig
from repro.perf.cache import StageCache
from repro.perf.shards import ShardPlan


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--certificates", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=414)
    args = parser.parse_args()

    plan = ShardPlan.from_generator(
        SyntheticConfig(n_certificates=args.certificates, seed=args.seed),
        "by-district",
        noise=NoiseConfig(seed=args.seed + 1),
    )
    spill_dir = tempfile.mkdtemp(prefix="repro-ci-shards-")
    cache = StageCache()
    config = IndiceConfig(
        geocoder_quota=10**9, stage_cache=True, spill_dir=spill_dir
    )

    start = time.perf_counter()
    cold = Indice(plan.collection, config, cache=cache).run_sharded(plan)
    cold_s = time.perf_counter() - start
    print(
        f"cold sharded run: {args.certificates} certificates, "
        f"{len(plan.shards)} shards, {cold_s:.1f}s "
        f"({args.certificates / cold_s:.0f} certs/s), "
        f"{cold.preprocessing.table.n_rows} rows kept"
    )

    victim = sorted(pathlib.Path(spill_dir).glob("*.spill"))[0]
    blob = bytearray(victim.read_bytes())
    blob[-10] ^= 0xFF
    victim.write_bytes(bytes(blob))

    start = time.perf_counter()
    warm = Indice(plan.collection, config, cache=cache).run_sharded(plan)
    warm_s = time.perf_counter() - start
    print(
        f"warm re-run (1 shard invalidated): {warm_s:.1f}s, "
        f"{cache.shard_hits} shards reused / "
        f"{cache.shard_misses - len(plan.shards)} recomputed"
    )

    failures = []
    if cache.shard_hits != len(plan.shards) - 1:
        failures.append(
            f"expected {len(plan.shards) - 1} warm shard hits, "
            f"got {cache.shard_hits}"
        )
    if cache.shard_misses != len(plan.shards) + 1:
        failures.append(
            f"expected {len(plan.shards) + 1} total shard misses, "
            f"got {cache.shard_misses}"
        )
    if warm.preprocessing.table != cold.preprocessing.table:
        failures.append("warm preprocessing table differs from cold")
    if warm.analytics.table != cold.analytics.table:
        failures.append("warm analytics table differs from cold")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("sharded smoke OK: warm output byte-equal to cold")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
